//! Building and running hardwired tests.
//!
//! The direct suite shares the chip's runtime reality — vector table,
//! trap handlers, embedded-software ROM — but, having no abstraction
//! layer, its startup wrapper hardwires the mailbox protocol too.

use advm_asm::{assemble, AsmError, Image, SourceSet};
use advm_sim::{Platform, RunResult};
use advm_soc::{Derivative, EsRom, Mailbox};

use crate::suite::DirectSuite;

/// Generates the hardwired startup wrapper for one test.
fn direct_unit(test_source: &str) -> String {
    let result = Mailbox::new().reg(Mailbox::RESULT);
    let sim_end = Mailbox::new().reg(Mailbox::SIM_END);
    format!(
        "\
;; __unit.asm — direct-test wrapper (no abstraction layer)
.ORG 0x0
.INCLUDE Vector_Table.inc
.ORG 0x100
__start:
    CALL _main
    LOAD d15, #0x{no_result:08X}
    STORE [0x{result:05X}], d15
    STORE [0x{sim_end:05X}], d15
    HALT #0xFE
.INCLUDE Trap_Handlers.asm
{test_source}
",
        no_result = Mailbox::FAIL_MAGIC | 0xFE,
    )
}

/// Builds one direct test into a loadable image (test + ES ROM).
///
/// # Errors
///
/// Returns assembly or link errors, and an error for unknown test ids.
pub fn build_direct_test(suite: &DirectSuite, test_id: &str) -> Result<Image, AsmError> {
    let source = suite
        .cell(test_id)
        .ok_or_else(|| AsmError::general(format!("no test `{test_id}` in {}", suite.name())))?;
    let sources = SourceSet::new()
        .with("__unit.asm", direct_unit(source))
        .with("Vector_Table.inc", advm::runtime::vector_table())
        .with("Trap_Handlers.asm", advm::runtime::trap_handlers());
    let unit = assemble("__unit.asm", &sources)?;

    let derivative = Derivative::from_id(suite.config().derivative);
    let rom = EsRom::generate(&derivative, suite.config().es_version);
    let es = advm_asm::assemble_str(rom.source())?;

    let mut image = Image::new();
    image
        .load_program(&unit)
        .map_err(|e| AsmError::general(format!("unit link failed: {e}")))?;
    image
        .load_program(&es)
        .map_err(|e| AsmError::general(format!("ES ROM link failed: {e}")))?;
    Ok(image)
}

/// Builds and runs one direct test on the suite's hardwired platform.
///
/// # Errors
///
/// Propagates build errors; execution problems land in the [`RunResult`].
pub fn run_direct_test(suite: &DirectSuite, test_id: &str) -> Result<RunResult, AsmError> {
    let image = build_direct_test(suite, test_id)?;
    let derivative = Derivative::from_id(suite.config().derivative);
    let mut platform = Platform::new(suite.config().platform, &derivative);
    platform.load_image(&image);
    Ok(platform.run())
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, EsVersion, PlatformId};

    use crate::suite::{direct_es_suite, direct_page_suite, SuiteConfig};

    use super::*;

    #[test]
    fn direct_page_tests_pass_on_their_target() {
        for derivative in DerivativeId::ALL {
            let suite = direct_page_suite(SuiteConfig::new(derivative, PlatformId::GoldenModel), 3);
            for (id, _) in suite.cells() {
                let result = run_direct_test(&suite, id)
                    .unwrap_or_else(|e| panic!("{derivative:?}/{id}: {e}"));
                assert!(result.passed(), "{derivative:?}/{id}: {result}");
            }
        }
    }

    #[test]
    fn direct_es_tests_pass_with_matching_conventions() {
        for es in [EsVersion::V1, EsVersion::V2] {
            let suite = direct_es_suite(
                SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel).with_es_version(es),
            );
            for (id, _) in suite.cells() {
                let result =
                    run_direct_test(&suite, id).unwrap_or_else(|e| panic!("{es}/{id}: {e}"));
                assert!(result.passed(), "{es}/{id}: {result}");
            }
        }
    }

    #[test]
    fn stale_suite_fails_on_new_derivative() {
        // A suite written for SC88-A, run unchanged against SC88-B
        // hardware: the hardwired geometry writes the wrong bits, the
        // mixed write/read paths disagree, and the test fails.
        let suite = direct_page_suite(
            SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            1,
        );
        let image = build_direct_test(&suite, "TEST_DIRECT_PAGE_01").unwrap();
        let b = Derivative::sc88b();
        let mut platform = Platform::new(PlatformId::GoldenModel, &b);
        platform.load_image(&image);
        let result = platform.run();
        // Self-consistent hardwiring *can* mask a moved field (write and
        // read through the same wrong bits), so assert on the hardware's
        // own view: the selected page must be wrong even if the test is
        // fooled.
        let selected = platform.bus().read32(0xE_0104).unwrap();
        let active = (selected >> 1) & 0x1F; // SC88-B geometry
        assert_ne!(
            active, 8,
            "stale test programmed the wrong page (result: {result})"
        );
    }

    #[test]
    fn stale_es_conventions_fail_loudly() {
        // Suite written against ES v1, run with a v2 ROM: the checksum
        // result register moved, so the hardwired test fails.
        let v1_suite = direct_es_suite(SuiteConfig::new(
            DerivativeId::Sc88A,
            PlatformId::GoldenModel,
        ));
        let stale = DirectSuiteWithV2Rom(&v1_suite);
        let result = stale.run("TEST_DIRECT_CHECKSUM");
        assert!(!result.passed(), "{result}");
    }

    /// Helper: run a suite's test against a v2 ES ROM without
    /// regenerating the tests (the "ES team re-released under us" event).
    struct DirectSuiteWithV2Rom<'a>(&'a DirectSuite);

    impl DirectSuiteWithV2Rom<'_> {
        fn run(&self, test_id: &str) -> RunResult {
            let source = self.0.cell(test_id).expect("test exists");
            let sources = SourceSet::new()
                .with("__unit.asm", super::direct_unit(source))
                .with("Vector_Table.inc", advm::runtime::vector_table())
                .with("Trap_Handlers.asm", advm::runtime::trap_handlers());
            let unit = assemble("__unit.asm", &sources).expect("assembles");
            let derivative = Derivative::from_id(self.0.config().derivative);
            let rom = EsRom::generate(&derivative, EsVersion::V2);
            let es = advm_asm::assemble_str(rom.source()).expect("ES ROM assembles");
            let mut image = Image::new();
            image.load_program(&unit).unwrap();
            image.load_program(&es).unwrap();
            let mut platform = Platform::new(self.0.config().platform, &derivative);
            platform.load_image(&image);
            platform.run()
        }
    }
}
