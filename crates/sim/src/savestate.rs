//! Versioned, byte-stable machine snapshots.
//!
//! A [`SaveState`] captures the *dynamic* state of a whole platform —
//! CPU registers, memories, every peripheral (including in-flight NVM
//! operations and armed timers), the MMIO-coverage set, decode-cache
//! counters and the execution trace — as one opaque little-endian byte
//! blob. Configuration-derived state (derivative register geometry,
//! platform cost models, injected-fault wiring) is *not* serialized: it
//! is re-derived from the constructor on restore, which is what makes
//! [`crate::Platform::fork`] able to re-target a snapshot at a different
//! injected fault.
//!
//! # Format and compatibility policy
//!
//! Every blob starts with the magic `b"ADVM"` followed by a single
//! format version byte ([`SAVESTATE_VERSION`]). The encoding of any
//! given version is frozen: the same machine state always serializes to
//! the same bytes (memories are run-length encoded, set iteration is
//! sorted). Any change to the layout MUST bump the version byte; blobs
//! from other versions are rejected with
//! [`SaveStateError::UnsupportedVersion`] rather than misread.

use std::fmt;

use advm_soc::testbench::PlatformId;

use crate::fault::PlatformFault;

/// Magic bytes at the start of every snapshot blob.
pub const SAVESTATE_MAGIC: [u8; 4] = *b"ADVM";

/// Current snapshot format version. Bump on any layout change.
pub const SAVESTATE_VERSION: u8 = 1;

/// An opaque, versioned snapshot of a whole machine.
///
/// Produced by [`crate::Platform::snapshot`]; consumed by
/// [`crate::Platform::restore`] and [`crate::Platform::from_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveState {
    bytes: Vec<u8>,
}

impl SaveState {
    pub(crate) fn from_raw(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// The serialized blob.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the blob.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Wraps externally stored bytes, validating magic and version.
    ///
    /// # Errors
    ///
    /// [`SaveStateError::BadMagic`] or
    /// [`SaveStateError::UnsupportedVersion`] if the header does not
    /// identify a blob this build can read.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SaveStateError> {
        let mut r = SaveReader::new(bytes);
        r.expect_header()?;
        Ok(Self {
            bytes: bytes.to_vec(),
        })
    }

    /// The format version byte of this blob.
    pub fn version(&self) -> u8 {
        self.bytes[SAVESTATE_MAGIC.len()]
    }
}

/// Why a snapshot could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveStateError {
    /// The blob does not start with the `ADVM` magic.
    BadMagic,
    /// The blob's format version differs from [`SAVESTATE_VERSION`].
    UnsupportedVersion(u8),
    /// The blob ended before the decoder did.
    Truncated,
    /// The blob decoded to an impossible state.
    Corrupt(&'static str),
    /// The blob was captured on a different platform.
    PlatformMismatch,
    /// The blob was captured under a different injected fault.
    FaultMismatch,
}

impl fmt::Display for SaveStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaveStateError::BadMagic => f.write_str("save state lacks the ADVM magic"),
            SaveStateError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "save state version {v} unsupported (this build reads {SAVESTATE_VERSION})"
                )
            }
            SaveStateError::Truncated => f.write_str("save state truncated"),
            SaveStateError::Corrupt(what) => write!(f, "save state corrupt: {what}"),
            SaveStateError::PlatformMismatch => {
                f.write_str("save state was captured on a different platform")
            }
            SaveStateError::FaultMismatch => {
                f.write_str("save state was captured under a different injected fault")
            }
        }
    }
}

impl std::error::Error for SaveStateError {}

// --- primitive writers ---------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Run-length encodes a memory array: decoded length, then
/// `(byte, run)` pairs. Mostly-blank ROM/RAM/NVM images compress to a
/// few dozen bytes, keeping committed golden blobs reviewable.
pub(crate) fn put_rle(out: &mut Vec<u8>, data: &[u8]) {
    put_u32(out, data.len() as u32);
    let mut rest = data;
    while let Some(&byte) = rest.first() {
        let run = run_length(rest, byte);
        put_u8(out, byte);
        put_u32(out, run as u32);
        rest = &rest[run..];
    }
}

/// Length of the leading run of `byte` in `data`. Scans a word at a
/// time: snapshotting is on campaigns' fork path, and the memories are
/// dominated by long blank runs.
fn run_length(data: &[u8], byte: u8) -> usize {
    let pattern = u64::from_ne_bytes([byte; 8]);
    let mut n = 0;
    while let Some(word) = data.get(n..n + 8) {
        if u64::from_ne_bytes(word.try_into().expect("8-byte slice")) != pattern {
            break;
        }
        n += 8;
    }
    while data.get(n) == Some(&byte) {
        n += 1;
    }
    n
}

// --- reader --------------------------------------------------------------

/// Cursor over a snapshot blob.
pub(crate) struct SaveReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SaveReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SaveStateError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(SaveStateError::Truncated)?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Validates the `ADVM` magic and version byte.
    pub(crate) fn expect_header(&mut self) -> Result<(), SaveStateError> {
        let magic = self.take(SAVESTATE_MAGIC.len())?;
        if magic != SAVESTATE_MAGIC {
            return Err(SaveStateError::BadMagic);
        }
        let version = self.take_u8()?;
        if version != SAVESTATE_VERSION {
            return Err(SaveStateError::UnsupportedVersion(version));
        }
        Ok(())
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, SaveStateError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_bool(&mut self) -> Result<bool, SaveStateError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SaveStateError::Corrupt("bool out of range")),
        }
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, SaveStateError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, SaveStateError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn take_bytes(&mut self) -> Result<&'a [u8], SaveStateError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// Decodes a run-length-encoded memory image into `dst`, whose
    /// length must equal the encoded length (memory sizes are fixed by
    /// the SC88 map, not by the blob).
    pub(crate) fn take_rle_into(&mut self, dst: &mut [u8]) -> Result<(), SaveStateError> {
        let total = self.take_u32()? as usize;
        if total != dst.len() {
            return Err(SaveStateError::Corrupt("memory size mismatch"));
        }
        let mut filled = 0usize;
        while filled < total {
            let byte = self.take_u8()?;
            let run = self.take_u32()? as usize;
            if run == 0 || run > total - filled {
                return Err(SaveStateError::Corrupt("bad run length"));
            }
            dst[filled..filled + run].fill(byte);
            filled += run;
        }
        Ok(())
    }

    /// Consumes an RLE section, verifying it decodes to exactly `len`
    /// bytes all equal to `fill` — without writing a destination. The
    /// pristine-rewind fast path uses this to check that a snapshot's
    /// memory payload matches the constructor values (so the memories
    /// can be reset through dirty-chunk fills instead of a full
    /// decode), while still consuming the reader exactly like
    /// [`SaveReader::take_rle_into`].
    pub(crate) fn take_rle_uniform(&mut self, len: usize, fill: u8) -> Result<(), SaveStateError> {
        let total = self.take_u32()? as usize;
        if total != len {
            return Err(SaveStateError::Corrupt("memory size mismatch"));
        }
        let mut filled = 0usize;
        while filled < total {
            let byte = self.take_u8()?;
            let run = self.take_u32()? as usize;
            if run == 0 || run > total - filled {
                return Err(SaveStateError::Corrupt("bad run length"));
            }
            if byte != fill {
                return Err(SaveStateError::Corrupt("snapshot memory is not pristine"));
            }
            filled += run;
        }
        Ok(())
    }

    /// Asserts the whole blob was consumed.
    pub(crate) fn expect_end(&self) -> Result<(), SaveStateError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SaveStateError::Corrupt("trailing bytes"))
        }
    }
}

// --- enum tag maps -------------------------------------------------------

/// Stable tag for a fault: `0` = no fault, then 1-based catalog order.
pub(crate) fn fault_tag(fault: PlatformFault) -> u8 {
    if fault == PlatformFault::None {
        return 0;
    }
    let idx = PlatformFault::ALL
        .iter()
        .position(|f| *f == fault)
        .expect("every non-None fault is catalogued");
    (idx + 1) as u8
}

pub(crate) fn fault_from_tag(tag: u8) -> Option<PlatformFault> {
    if tag == 0 {
        return Some(PlatformFault::None);
    }
    PlatformFault::ALL.get(usize::from(tag) - 1).copied()
}

pub(crate) fn platform_from_code(code: u32) -> Option<PlatformId> {
    PlatformId::ALL.iter().copied().find(|p| p.code() == code)
}

/// FNV-1a fold, used for architectural state digests.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a offset basis.
pub(crate) const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrips_arbitrary_data() {
        for data in [
            vec![],
            vec![0u8; 64],
            vec![1, 1, 2, 3, 3, 3, 0],
            (0..=255u8).collect::<Vec<_>>(),
        ] {
            let mut out = Vec::new();
            put_rle(&mut out, &data);
            let mut back = vec![0xEEu8; data.len()];
            let mut r = SaveReader::new(&out);
            r.take_rle_into(&mut back).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn rle_rejects_length_mismatch() {
        let mut out = Vec::new();
        put_rle(&mut out, &[0u8; 8]);
        let mut dst = [0u8; 4];
        let mut r = SaveReader::new(&out);
        assert_eq!(
            r.take_rle_into(&mut dst),
            Err(SaveStateError::Corrupt("memory size mismatch"))
        );
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = SaveReader::new(&[1, 2]);
        assert_eq!(r.take_u32(), Err(SaveStateError::Truncated));
    }

    #[test]
    fn fault_tags_roundtrip_exhaustively() {
        for fault in std::iter::once(PlatformFault::None).chain(PlatformFault::ALL) {
            let tag = fault_tag(fault);
            assert_eq!(fault_from_tag(tag), Some(fault), "{fault:?}");
        }
        assert_eq!(fault_from_tag(14), None, "13 faults + none");
    }

    #[test]
    fn platform_codes_roundtrip() {
        for id in PlatformId::ALL {
            assert_eq!(platform_from_code(id.code()), Some(id));
        }
        assert_eq!(platform_from_code(0xFFFF), None);
    }

    #[test]
    fn from_bytes_validates_header() {
        assert_eq!(
            SaveState::from_bytes(b"NOPE\x01"),
            Err(SaveStateError::BadMagic)
        );
        assert_eq!(
            SaveState::from_bytes(b"ADVM\x63"),
            Err(SaveStateError::UnsupportedVersion(0x63))
        );
        assert!(SaveState::from_bytes(b"ADVM\x01").is_ok());
    }
}
