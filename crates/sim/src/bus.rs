//! The SoC bus: memory regions plus derivative-placed peripherals.
//!
//! The bus is constructed from a [`Derivative`], so peripheral base
//! addresses (the UART moves on SC88-D) and bit-field geometry (the page
//! field moves/widens on SC88-B/C) are *hardware properties*, not just
//! documentation. A test built against the wrong `Globals.inc` touches
//! the wrong addresses or bits and fails — which is exactly the behaviour
//! the methodology's experiments need to observe.

use std::fmt;

use advm_isa::Insn;
use advm_soc::memmap::{MemoryMap, NVM_SIZE, NVM_START, RAM_SIZE, RAM_START, ROM_SIZE, ROM_START};
use advm_soc::testbench::PlatformId;
use advm_soc::{Derivative, RegionKind};

use crate::decoded::{DecodeCache, DecodeStats, DecodedProgram, ExecRegion, Superblock};
use crate::fault::{PlatformFault, BUS_WAIT_STATE_CYCLES};
use crate::periph::{
    timer::TIMER_IRQ_LINE, CrcUnit, Intc, MailboxDevice, NvmController, PageModule, Timer, Uart,
    Watchdog,
};
use crate::savestate::{put_bool, put_u32, put_u64, SaveReader, SaveStateError};
use crate::trace::{MmioEvent, MmioTrace};

/// A bus access fault, mapped to a CPU trap by the execution core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFault {
    /// No region or peripheral claims the address.
    Unmapped(u32),
    /// Word access to a non-word-aligned address.
    Misaligned(u32),
    /// Store to ROM or directly to NVM.
    ReadOnly(u32),
    /// Byte-wide access to a word-only MMIO register.
    ByteAccessToMmio(u32),
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusFault::Unmapped(a) => write!(f, "unmapped address {a:#07x}"),
            BusFault::Misaligned(a) => write!(f, "misaligned access at {a:#07x}"),
            BusFault::ReadOnly(a) => write!(f, "store to read-only memory at {a:#07x}"),
            BusFault::ByteAccessToMmio(a) => write!(f, "byte access to MMIO at {a:#07x}"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Periph {
    Uart,
    Page,
    Timer,
    Intc,
    Wdt,
    Nvmc,
    Crc,
    Mailbox,
}

#[derive(Debug, Clone)]
struct Mapping {
    base: u32,
    size: u32,
    periph: Periph,
}

/// The SC88 SoC bus for one (derivative, platform) pair.
#[derive(Debug, Clone)]
pub struct SocBus {
    rom: Vec<u8>,
    ram: Vec<u8>,
    nvm: Vec<u8>,
    mappings: Vec<Mapping>,
    uart: Uart,
    page: PageModule,
    timer: Timer,
    intc: Intc,
    wdt: Watchdog,
    nvmc: NvmController,
    crc: CrcUnit,
    mailbox: MailboxDevice,
    memmap: MemoryMap,
    now: u64,
    watchdog_bite: bool,
    mmio_touched: std::collections::BTreeSet<u32>,
    /// Fault injection: ES jump-table fetches return the next slot.
    es_skew: bool,
    /// Fault injection: extra cycles charged per MMIO access (0 = none).
    mmio_wait: u64,
    /// Predecoded-instruction cache over ROM/RAM/NVM words.
    decode: DecodeCache,
    /// Hoisted attention flag: true iff a watchdog bite is latched or an
    /// enabled interrupt line is pending. The CPU fast path tests this
    /// one bool instead of polling the peripherals every step.
    async_work: bool,
    /// Hoisted timing flag: true iff advancing time can change any
    /// state (timer or watchdog armed, NVM operation in flight). While
    /// false, [`SocBus::advance`] is a bare cycle-counter add.
    timing_active: bool,
    /// Optional test-bench bus monitor: records MMIO transactions for
    /// assertion mining/checking. Verification scaffolding, not machine
    /// state — never serialized into snapshots.
    mmio_trace: Option<MmioTrace>,
    /// Dirty-chunk bitmaps over the three memories (one bit per
    /// [`DIRTY_CHUNK`] bytes): which chunks may differ from their
    /// constructor fill. [`SocBus::rewind_memories`] resets only these,
    /// so pooled machines rewind in proportion to what a run touched
    /// instead of re-filling all of ROM+RAM+NVM. Bookkeeping, not
    /// machine state — never serialized.
    dirty_rom: u64,
    dirty_ram: u64,
    dirty_nvm: u64,
}

/// Granularity of the dirty-memory bitmaps: 4 KiB chunks keep every
/// region's chunk count within one `u64` (ROM's 256 KiB → 64 bits).
const DIRTY_CHUNK: usize = 4096;

/// Marks the chunks covering `start..end` (byte offsets) dirty.
fn mark_dirty(bits: &mut u64, start: usize, end: usize) {
    debug_assert!(start < end);
    for chunk in (start / DIRTY_CHUNK)..=((end - 1) / DIRTY_CHUNK) {
        *bits |= 1 << chunk;
    }
}

/// Fills every dirty chunk of `mem` with its constructor value.
fn fill_dirty(mem: &mut [u8], mut dirty: u64, value: u8) {
    while dirty != 0 {
        let chunk = dirty.trailing_zeros() as usize;
        dirty &= dirty - 1;
        let start = chunk * DIRTY_CHUNK;
        if start >= mem.len() {
            break;
        }
        let end = (start + DIRTY_CHUNK).min(mem.len());
        mem[start..end].fill(value);
    }
}

impl SocBus {
    /// Builds the bus for a derivative on a platform, with optional fault
    /// injection.
    ///
    /// # Panics
    ///
    /// Panics if the derivative's register map is missing a catalogued
    /// module — impossible for maps produced by [`Derivative::regmap`].
    pub fn new(derivative: &Derivative, platform: PlatformId, fault: PlatformFault) -> Self {
        let map = derivative.regmap();
        let module = |name: &str| {
            map.module(name)
                .unwrap_or_else(|| panic!("derivative map lacks module {name}"))
        };
        let field = |module_name: &str, reg: &str, field_name: &str| {
            let hw = derivative.hardware_register_name(reg);
            map.module(module_name)
                .and_then(|m| m.register(hw))
                .and_then(|r| r.field(field_name))
                .cloned()
                .unwrap_or_else(|| panic!("missing field {module_name}.{reg}.{field_name}"))
        };

        let cycle_accurate = matches!(platform, PlatformId::RtlSim | PlatformId::GateSim);

        let mut uart = Uart::new(cycle_accurate);
        let mut page = PageModule::new(
            field("PAGE", "PAGE_CTRL", "PAGE"),
            field("PAGE", "PAGE_CTRL", "ENABLE"),
            field("PAGE", "PAGE_STATUS", "ACTIVE_PAGE"),
            field("PAGE", "PAGE_STATUS", "READY"),
        );
        let mut timer = Timer::new();
        let mut mailbox = MailboxDevice::new(platform);
        let mut es_skew = false;
        let mut mmio_wait = 0;
        match fault {
            PlatformFault::None => {}
            PlatformFault::PageActiveOffByOne => page.inject_active_off_by_one(),
            PlatformFault::PageSelectDropsLowBit => page.inject_select_drops_low_bit(),
            PlatformFault::PageMapWriteIgnored => page.inject_map_write_ignored(),
            PlatformFault::UartDropsBytes => uart.inject_drop_bytes(),
            PlatformFault::UartTxStuckBusy => uart.inject_tx_stuck_busy(),
            PlatformFault::UartDuplicatesBytes => uart.inject_duplicate_bytes(),
            PlatformFault::TimerNeverExpires => timer.inject_never_expires(),
            PlatformFault::TimerPeriodicNoReload => timer.inject_periodic_no_reload(),
            PlatformFault::TimerIrqSuppressed => timer.inject_irq_suppressed(),
            PlatformFault::MailboxScratchStuck => mailbox.inject_scratch_stuck(),
            PlatformFault::MailboxTicksFrozen => mailbox.inject_ticks_frozen(),
            PlatformFault::EsDispatchSkewed => es_skew = true,
            PlatformFault::BusExtraWaitStates => mmio_wait = BUS_WAIT_STATE_CYCLES,
        }

        let mappings = vec![
            Mapping {
                base: module("UART").base(),
                size: module("UART").size(),
                periph: Periph::Uart,
            },
            Mapping {
                base: module("PAGE").base(),
                size: module("PAGE").size(),
                periph: Periph::Page,
            },
            Mapping {
                base: module("TIMER").base(),
                size: module("TIMER").size(),
                periph: Periph::Timer,
            },
            Mapping {
                base: module("INTC").base(),
                size: module("INTC").size(),
                periph: Periph::Intc,
            },
            Mapping {
                base: module("WDT").base(),
                size: module("WDT").size(),
                periph: Periph::Wdt,
            },
            Mapping {
                base: module("NVMC").base(),
                size: module("NVMC").size(),
                periph: Periph::Nvmc,
            },
            Mapping {
                base: module("CRC").base(),
                size: module("CRC").size(),
                periph: Periph::Crc,
            },
            Mapping {
                base: module("TB").base(),
                size: module("TB").size(),
                periph: Periph::Mailbox,
            },
        ];

        Self {
            rom: vec![0; ROM_SIZE as usize],
            ram: vec![0; RAM_SIZE as usize],
            nvm: vec![0xFF; NVM_SIZE as usize],
            mappings,
            uart,
            page,
            timer,
            intc: Intc::new(),
            wdt: Watchdog::new(),
            nvmc: NvmController::new(NVM_SIZE),
            crc: CrcUnit::new(),
            mailbox,
            memmap: MemoryMap::sc88(),
            now: 0,
            watchdog_bite: false,
            mmio_touched: std::collections::BTreeSet::new(),
            es_skew,
            mmio_wait,
            decode: DecodeCache::default(),
            async_work: false,
            timing_active: false,
            mmio_trace: None,
            dirty_rom: 0,
            dirty_ram: 0,
            dirty_nvm: 0,
        }
    }

    /// Arms the MMIO bus monitor, keeping at most `capacity` most-recent
    /// transactions. Available on every platform: the monitor belongs to
    /// the verification environment, not the device under test.
    pub fn enable_mmio_trace(&mut self, capacity: usize) {
        self.mmio_trace = Some(MmioTrace::new(capacity));
    }

    /// The MMIO bus monitor, if armed.
    pub fn mmio_trace(&self) -> Option<&MmioTrace> {
        self.mmio_trace.as_ref()
    }

    /// Recomputes the hoisted attention flag. Must be called whenever
    /// the watchdog latch or the interrupt controller's pending/enabled
    /// state may have changed.
    fn recompute_async(&mut self) {
        self.async_work = self.watchdog_bite || self.intc.active_line().is_some();
    }

    /// Recomputes the hoisted timing flag. Must be called whenever a
    /// peripheral's armed/busy state may have changed.
    fn recompute_timing(&mut self) {
        self.timing_active = self.timer.armed() || self.wdt.armed() || self.nvmc.op_in_flight();
    }

    /// Whether an asynchronous cause (watchdog bite or pending enabled
    /// IRQ) needs the CPU's attention. A single-bool fast-path check;
    /// the CPU consults [`SocBus::take_watchdog_bite`] /
    /// [`SocBus::pending_irq`] only when this is true.
    #[inline]
    pub fn async_pending(&self) -> bool {
        self.async_work
    }

    /// Whether advancing time can change any machine state (timer or
    /// watchdog armed, NVM operation in flight). While false, nothing
    /// asynchronous can surface between two bus accesses — the
    /// precondition for whole-superblock dispatch.
    #[inline]
    pub fn timing_active(&self) -> bool {
        self.timing_active
    }

    /// Applies the ES-dispatch-skew fault to a ROM fetch address: reads
    /// inside the embedded-software jump table are redirected to the next
    /// slot (wrapping), modelling an address decoder off by one row.
    fn skewed_rom_addr(&self, addr: u32) -> u32 {
        if !self.es_skew {
            return addr;
        }
        let table_base = advm_soc::memmap::ES_BASE;
        let table_bytes = 4 * advm_soc::EsFunction::ALL.len() as u32;
        if addr >= table_base && addr < table_base + table_bytes {
            table_base + (addr - table_base + 4) % table_bytes
        } else {
            addr
        }
    }

    /// Every MMIO register address the software touched (read or write) —
    /// the raw material for register-coverage reporting.
    pub fn mmio_touched(&self) -> impl Iterator<Item = u32> + '_ {
        self.mmio_touched.iter().copied()
    }

    /// Loads an assembled image into backing memory (ROM/RAM/NVM regions).
    ///
    /// # Panics
    ///
    /// Panics if a byte falls outside every loadable region — images are
    /// produced by the assembler against the SC88 memory map, so this
    /// indicates a corrupt build, not user input.
    pub fn load_image(&mut self, image: &advm_asm::Image) {
        self.decode.invalidate_all();
        for (base, bytes) in image.runs() {
            // Copy region-sized spans at a time; a run rarely crosses a
            // region boundary, so this is one memcpy per run in practice.
            let mut addr = base;
            let mut rest = bytes;
            while !rest.is_empty() {
                let Some(region) = self.memmap.region_at(addr) else {
                    panic!("image byte at {addr:#07x} outside loadable memory")
                };
                let span = rest.len().min((region.end() - addr) as usize);
                let off = (addr - region.start()) as usize;
                let (dst, dirty) = match region.kind() {
                    RegionKind::Rom => (&mut self.rom, &mut self.dirty_rom),
                    RegionKind::Ram => (&mut self.ram, &mut self.dirty_ram),
                    RegionKind::Nvm => (&mut self.nvm, &mut self.dirty_nvm),
                    _ => panic!("image byte at {addr:#07x} outside loadable memory"),
                };
                dst[off..off + span].copy_from_slice(&rest[..span]);
                mark_dirty(dirty, off, off + span);
                addr += span as u32;
                rest = &rest[span..];
            }
        }
    }

    /// Seeds the decode cache from a shared predecode artifact (see
    /// [`DecodedProgram`]). Call after [`SocBus::load_image`] with the
    /// artifact built from the *same* image; a no-op while the cache is
    /// disabled.
    pub fn seed_decoded(&mut self, program: &DecodedProgram) {
        self.decode.preload(program);
    }

    /// Enables or disables the predecoded-instruction cache (default:
    /// enabled). Disabled, every fetch re-decodes — the pre-refactor
    /// baseline the benches compare against.
    pub fn set_decode_cache(&mut self, enabled: bool) {
        self.decode.set_enabled(enabled);
    }

    /// Whether the predecoded-instruction cache is enabled.
    pub fn decode_cache_enabled(&self) -> bool {
        self.decode.enabled()
    }

    /// Enables or disables superblock dispatch (default: enabled).
    /// Requires the decode cache too — blocks are chained over its
    /// slots. Disabled, execution takes the per-word predecoded path,
    /// the baseline the block tier is benchmarked against. The setting
    /// is runtime configuration, not machine state: it is never
    /// serialized into snapshots.
    pub fn set_superblocks(&mut self, enabled: bool) {
        self.decode.set_blocks(enabled);
    }

    /// Whether superblock dispatch is enabled.
    pub fn superblocks_enabled(&self) -> bool {
        self.decode.blocks_enabled()
    }

    /// The superblock starting at `addr`, looked up or built through
    /// the decode cache. `None` when the tier is off, the address is
    /// misaligned or outside executable memory, the ES-skew fault
    /// redirects fetches there, or no bus-free run starts at the word.
    #[inline]
    pub(crate) fn superblock_at(&mut self, addr: u32) -> Option<std::sync::Arc<Superblock>> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        match ExecRegion::classify(addr) {
            Some((ExecRegion::Rom, idx)) => {
                // Blocks never start inside or extend into the skewed
                // jump table: those fetches take the per-word bypass.
                let excluded = self.es_skew.then(|| {
                    let lo = ((advm_soc::memmap::ES_BASE - ROM_START) >> 2) as usize;
                    (lo, lo + advm_soc::EsFunction::ALL.len())
                });
                self.decode
                    .superblock(ExecRegion::Rom, &self.rom, idx, excluded)
            }
            Some((ExecRegion::Ram, idx)) => {
                self.decode
                    .superblock(ExecRegion::Ram, &self.ram, idx, None)
            }
            Some((ExecRegion::Nvm, idx)) => {
                self.decode
                    .superblock(ExecRegion::Nvm, &self.nvm, idx, None)
            }
            None => None,
        }
    }

    /// Accounts one whole-block dispatch (see
    /// [`DecodeCache::note_block_dispatch`]).
    #[inline]
    pub(crate) fn note_block_dispatch(&mut self, insns: u64) {
        self.decode.note_block_dispatch(insns);
    }

    /// The decode cache's block-invalidation epoch (see
    /// [`DecodeCache::generation`]).
    #[inline]
    pub(crate) fn decode_generation(&self) -> u64 {
        self.decode.generation()
    }

    /// The run's decode-cache counters.
    pub fn decode_stats(&self) -> DecodeStats {
        self.decode.stats
    }

    /// The current cycle count.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances time: peripherals tick, timed NVM ops commit, timer IRQs
    /// route to the interrupt controller, watchdog expiry latches.
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
        // Fast path: with no timer or watchdog armed and no NVM op in
        // flight, advancing time cannot change any state.
        if !self.timing_active {
            return;
        }
        self.timer.tick(cycles);
        if self.timer.take_irq() {
            self.intc.raise(TIMER_IRQ_LINE);
        }
        self.wdt.tick(cycles);
        if self.wdt.take_expiry() {
            self.watchdog_bite = true;
        }
        if let Some(op) = self.nvmc.take_completed(self.now) {
            match op {
                crate::periph::nvmc::NvmOp::Write { offset, value } => {
                    let o = offset as usize;
                    self.nvm[o..o + 4].copy_from_slice(&value.to_le_bytes());
                    mark_dirty(&mut self.dirty_nvm, o, o + 4);
                    self.decode
                        .invalidate_word(ExecRegion::Nvm, (offset >> 2) as usize);
                }
                crate::periph::nvmc::NvmOp::Erase { offset } => {
                    let page = (offset / crate::periph::nvmc::PAGE_BYTES)
                        * crate::periph::nvmc::PAGE_BYTES;
                    let p = page as usize;
                    let end = (p + crate::periph::nvmc::PAGE_BYTES as usize).min(self.nvm.len());
                    self.nvm[p..end].fill(0xFF);
                    mark_dirty(&mut self.dirty_nvm, p, end);
                    self.decode.invalidate_range(
                        ExecRegion::Nvm,
                        (page >> 2) as usize,
                        (end - p) / 4,
                    );
                }
            }
        }
        self.recompute_async();
        self.recompute_timing();
    }

    /// The lowest pending enabled interrupt line, if any.
    pub fn pending_irq(&self) -> Option<u8> {
        self.intc.active_line()
    }

    /// Takes the watchdog-expiry edge.
    pub fn take_watchdog_bite(&mut self) -> bool {
        let bite = std::mem::take(&mut self.watchdog_bite);
        if bite {
            self.recompute_async();
        }
        bite
    }

    /// The test-bench mailbox (outcome, console, sim-end flag).
    pub fn mailbox(&self) -> &MailboxDevice {
        &self.mailbox
    }

    /// UART transmit log (for checking UART tests end to end).
    pub fn uart_tx(&self) -> &[u8] {
        self.uart.tx_log()
    }

    /// Serializes the bus's dynamic state: cycle counter, latched
    /// watchdog bite, the three memories (run-length encoded), the MMIO
    /// coverage set (sorted — `BTreeSet` iteration order), the decode
    /// cache counters, and all eight peripherals in fixed order.
    /// Configuration (mappings, memory map, fault wiring) is re-derived
    /// from the constructor on restore.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.now);
        put_bool(out, self.watchdog_bite);
        crate::savestate::put_rle(out, &self.rom);
        crate::savestate::put_rle(out, &self.ram);
        crate::savestate::put_rle(out, &self.nvm);
        put_u32(out, self.mmio_touched.len() as u32);
        for addr in &self.mmio_touched {
            put_u32(out, *addr);
        }
        self.decode.save_state(out);
        self.uart.save_state(out);
        self.page.save_state(out);
        self.timer.save_state(out);
        self.intc.save_state(out);
        self.wdt.save_state(out);
        self.nvmc.save_state(out);
        self.crc.save_state(out);
        self.mailbox.save_state(out);
    }

    /// Restores the bus's dynamic state, then recomputes the hoisted
    /// attention/timing flags from the restored peripherals.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.now = r.take_u64()?;
        self.watchdog_bite = r.take_bool()?;
        r.take_rle_into(&mut self.rom)?;
        r.take_rle_into(&mut self.ram)?;
        r.take_rle_into(&mut self.nvm)?;
        // The snapshot may hold arbitrary content: every chunk may now
        // differ from its constructor fill.
        self.dirty_rom = !0;
        self.dirty_ram = !0;
        self.dirty_nvm = !0;
        self.apply_state_tail(r)
    }

    /// [`SocBus::apply_state`] specialized for a *pristine* snapshot —
    /// one captured right after construction. The memory sections are
    /// verified to hold the constructor fills (and rejected otherwise),
    /// then the arrays are reset through the dirty-chunk bitmaps: cost
    /// proportional to what the last run touched, not to total memory.
    /// This is what makes pooled campaign machines cheaper to rewind
    /// than to reconstruct.
    pub(crate) fn apply_pristine_state(
        &mut self,
        r: &mut SaveReader<'_>,
    ) -> Result<(), SaveStateError> {
        self.now = r.take_u64()?;
        self.watchdog_bite = r.take_bool()?;
        r.take_rle_uniform(self.rom.len(), 0x00)?;
        r.take_rle_uniform(self.ram.len(), 0x00)?;
        r.take_rle_uniform(self.nvm.len(), 0xFF)?;
        fill_dirty(&mut self.rom, self.dirty_rom, 0x00);
        fill_dirty(&mut self.ram, self.dirty_ram, 0x00);
        fill_dirty(&mut self.nvm, self.dirty_nvm, 0xFF);
        self.dirty_rom = 0;
        self.dirty_ram = 0;
        self.dirty_nvm = 0;
        self.apply_state_tail(r)
    }

    /// The shared non-memory tail of [`SocBus::apply_state`] and
    /// [`SocBus::apply_pristine_state`].
    fn apply_state_tail(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.mmio_touched.clear();
        for _ in 0..r.take_u32()? {
            self.mmio_touched.insert(r.take_u32()?);
        }
        self.decode.apply_state(r)?;
        self.uart.apply_state(r)?;
        self.page.apply_state(r)?;
        self.timer.apply_state(r)?;
        self.intc.apply_state(r)?;
        self.wdt.apply_state(r)?;
        self.nvmc.apply_state(r)?;
        self.crc.apply_state(r)?;
        self.mailbox.apply_state(r)?;
        self.recompute_async();
        self.recompute_timing();
        Ok(())
    }

    /// Appends the architectural (timing-free) bus state for divergence
    /// digests: RAM, NVM, and the externally observable peripheral state
    /// (mailbox protocol registers, UART transmit log, page selection).
    /// Cycle counters and busy-until deadlines are excluded so platforms
    /// that share a cost model digest equal while architecturally equal.
    pub(crate) fn arch_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ram);
        out.extend_from_slice(&self.nvm);
        self.mailbox.arch_bytes(out);
        self.uart.arch_bytes(out);
        self.page.arch_bytes(out);
    }

    /// Whether forking a run with `fault` injected from this machine's
    /// current state is *provably* equivalent to running it from reset:
    /// true iff the fault's observable surface was never exercised so
    /// far. Page/UART/timer/mailbox faults are safe iff no register of
    /// that module was touched; extra bus wait states are safe iff no
    /// MMIO at all was touched; the ES jump-table skew redirects ROM
    /// fetches the coverage set never records, so it is never safe.
    pub fn fault_fork_safe(&self, fault: PlatformFault) -> bool {
        let module = match fault {
            PlatformFault::None => return true,
            PlatformFault::EsDispatchSkewed => return false,
            PlatformFault::BusExtraWaitStates => return self.mmio_touched.is_empty(),
            PlatformFault::PageActiveOffByOne
            | PlatformFault::PageSelectDropsLowBit
            | PlatformFault::PageMapWriteIgnored => Periph::Page,
            PlatformFault::UartDropsBytes
            | PlatformFault::UartTxStuckBusy
            | PlatformFault::UartDuplicatesBytes => Periph::Uart,
            PlatformFault::TimerNeverExpires
            | PlatformFault::TimerPeriodicNoReload
            | PlatformFault::TimerIrqSuppressed => Periph::Timer,
            PlatformFault::MailboxScratchStuck | PlatformFault::MailboxTicksFrozen => {
                Periph::Mailbox
            }
        };
        let Some(m) = self.mappings.iter().find(|m| m.periph == module) else {
            return false;
        };
        self.mmio_touched
            .range(m.base..m.base + m.size)
            .next()
            .is_none()
    }

    /// Direct NVM inspection for assertions in tests and experiments.
    pub fn nvm_word(&self, offset: u32) -> u32 {
        let o = offset as usize;
        u32::from_le_bytes([
            self.nvm[o],
            self.nvm[o + 1],
            self.nvm[o + 2],
            self.nvm[o + 3],
        ])
    }

    fn mapping_at(&self, addr: u32) -> Option<(Periph, u32)> {
        self.mappings
            .iter()
            .find(|m| addr >= m.base && addr < m.base + m.size)
            .map(|m| (m.periph, addr - m.base))
    }

    fn periph_read(&mut self, periph: Periph, offset: u32) -> u32 {
        match periph {
            Periph::Uart => self.uart.read(offset, self.now),
            Periph::Page => self.page.read(offset),
            Periph::Timer => self.timer.read(offset),
            Periph::Intc => self.intc.read(offset),
            Periph::Wdt => self.wdt.read(offset),
            Periph::Nvmc => self.nvmc.read(offset, self.now),
            Periph::Crc => self.crc.read(offset),
            Periph::Mailbox => self.mailbox.read(offset, self.now),
        }
    }

    fn periph_write(&mut self, periph: Periph, offset: u32, value: u32) {
        match periph {
            Periph::Uart => self.uart.write(offset, value, self.now),
            Periph::Page => self.page.write(offset, value),
            Periph::Timer => self.timer.write(offset, value),
            Periph::Intc => self.intc.write(offset, value),
            Periph::Wdt => self.wdt.write(offset, value),
            Periph::Nvmc => self.nvmc.write(offset, value, self.now),
            Periph::Crc => self.crc.write(offset, value),
            Periph::Mailbox => self.mailbox.write(offset, value),
        }
    }

    /// Reads a 32-bit word.
    ///
    /// Plain ROM/RAM/NVM traffic takes a region-split fast path (three
    /// range compares); only MMIO and unmapped addresses reach the
    /// peripheral match.
    ///
    /// # Errors
    ///
    /// Returns a [`BusFault`] for misaligned or unmapped accesses.
    #[inline]
    pub fn read32(&mut self, addr: u32) -> Result<u32, BusFault> {
        if !addr.is_multiple_of(4) {
            return Err(BusFault::Misaligned(addr));
        }
        if addr < ROM_START + ROM_SIZE {
            let fetch = if self.es_skew {
                self.skewed_rom_addr(addr)
            } else {
                addr
            };
            return Ok(read_word(&self.rom, fetch - ROM_START));
        }
        if addr.wrapping_sub(RAM_START) < RAM_SIZE {
            return Ok(read_word(&self.ram, addr - RAM_START));
        }
        if addr.wrapping_sub(NVM_START) < NVM_SIZE {
            return Ok(read_word(&self.nvm, addr - NVM_START));
        }
        self.mmio_read32(addr)
    }

    /// The MMIO/unmapped slow path of [`SocBus::read32`].
    fn mmio_read32(&mut self, addr: u32) -> Result<u32, BusFault> {
        match self.memmap.region_at(addr).map(|r| r.kind()) {
            Some(RegionKind::Mmio) => match self.mapping_at(addr) {
                Some((p, offset)) => {
                    self.mmio_touched.insert(addr);
                    if self.mmio_wait > 0 {
                        self.advance(self.mmio_wait);
                    }
                    let value = self.periph_read(p, offset);
                    if let Some(monitor) = self.mmio_trace.as_mut() {
                        monitor.record(MmioEvent {
                            cycle: self.now,
                            addr,
                            value,
                            write: false,
                        });
                    }
                    self.recompute_async();
                    self.recompute_timing();
                    Ok(value)
                }
                None => Err(BusFault::Unmapped(addr)),
            },
            _ => Err(BusFault::Unmapped(addr)),
        }
    }

    /// Fetches and decodes the instruction word at `addr` through the
    /// predecoded-instruction cache. Returns the raw word and its
    /// decoding (`None` = illegal instruction).
    ///
    /// Architecturally identical to `read32` + `decode`: ES-skew
    /// redirected fetches bypass the cache (re-fetching the skewed slot
    /// every time), and RAM/NVM slots are invalidated by the stores that
    /// rewrite them, so the cached and uncached instruction streams are
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// The same [`BusFault`] classes as [`SocBus::read32`].
    #[inline]
    pub fn fetch_decoded(&mut self, addr: u32) -> Result<(u32, Option<Insn>), BusFault> {
        if !addr.is_multiple_of(4) {
            return Err(BusFault::Misaligned(addr));
        }
        if self.es_skew && addr < ROM_START + ROM_SIZE {
            let fetch = self.skewed_rom_addr(addr);
            if fetch != addr {
                // Jump-table skew: the redirected word is never cached
                // under the requested address — always re-decode.
                self.decode.stats.misses += 1;
                let word = read_word(&self.rom, fetch - ROM_START);
                return Ok((word, advm_isa::decode(word).ok()));
            }
        }
        match ExecRegion::classify(addr) {
            Some((ExecRegion::Rom, idx)) => Ok(self.decode.fetch(ExecRegion::Rom, &self.rom, idx)),
            Some((ExecRegion::Ram, idx)) => Ok(self.decode.fetch(ExecRegion::Ram, &self.ram, idx)),
            Some((ExecRegion::Nvm, idx)) => Ok(self.decode.fetch(ExecRegion::Nvm, &self.nvm, idx)),
            None => {
                // Executing out of MMIO: architecturally allowed, never
                // cached (register reads have side effects).
                let word = self.mmio_read32(addr)?;
                self.decode.stats.misses += 1;
                Ok((word, advm_isa::decode(word).ok()))
            }
        }
    }

    /// Writes a 32-bit word.
    ///
    /// RAM stores take the region-split fast path and precisely
    /// invalidate the decode-cache word they hit (self-modifying code).
    ///
    /// # Errors
    ///
    /// Returns a [`BusFault`] for misaligned, unmapped or read-only
    /// targets (ROM, and the NVM region, which is programmed only through
    /// the NVM controller).
    #[inline]
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        if !addr.is_multiple_of(4) {
            return Err(BusFault::Misaligned(addr));
        }
        if addr.wrapping_sub(RAM_START) < RAM_SIZE {
            write_word(&mut self.ram, addr - RAM_START, value);
            self.dirty_ram |= 1 << ((addr - RAM_START) as usize / DIRTY_CHUNK);
            self.decode
                .invalidate_word(ExecRegion::Ram, ((addr - RAM_START) >> 2) as usize);
            return Ok(());
        }
        if addr < ROM_START + ROM_SIZE || addr.wrapping_sub(NVM_START) < NVM_SIZE {
            return Err(BusFault::ReadOnly(addr));
        }
        match self.memmap.region_at(addr).map(|r| r.kind()) {
            Some(RegionKind::Mmio) => match self.mapping_at(addr) {
                Some((p, offset)) => {
                    self.mmio_touched.insert(addr);
                    if self.mmio_wait > 0 {
                        self.advance(self.mmio_wait);
                    }
                    if let Some(monitor) = self.mmio_trace.as_mut() {
                        monitor.record(MmioEvent {
                            cycle: self.now,
                            addr,
                            value,
                            write: true,
                        });
                    }
                    self.periph_write(p, offset, value);
                    self.recompute_async();
                    self.recompute_timing();
                    Ok(())
                }
                None => Err(BusFault::Unmapped(addr)),
            },
            _ => Err(BusFault::Unmapped(addr)),
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns a [`BusFault`] for unmapped addresses or MMIO (registers
    /// are word-only).
    #[inline]
    pub fn read8(&mut self, addr: u32) -> Result<u8, BusFault> {
        if addr < ROM_START + ROM_SIZE {
            return Ok(self.rom[(addr - ROM_START) as usize]);
        }
        if addr.wrapping_sub(RAM_START) < RAM_SIZE {
            return Ok(self.ram[(addr - RAM_START) as usize]);
        }
        if addr.wrapping_sub(NVM_START) < NVM_SIZE {
            return Ok(self.nvm[(addr - NVM_START) as usize]);
        }
        match self.memmap.region_at(addr).map(|r| r.kind()) {
            Some(RegionKind::Mmio) => Err(BusFault::ByteAccessToMmio(addr)),
            _ => Err(BusFault::Unmapped(addr)),
        }
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Same classes as [`SocBus::write32`], plus MMIO byte access.
    #[inline]
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), BusFault> {
        if addr.wrapping_sub(RAM_START) < RAM_SIZE {
            self.ram[(addr - RAM_START) as usize] = value;
            self.dirty_ram |= 1 << ((addr - RAM_START) as usize / DIRTY_CHUNK);
            self.decode
                .invalidate_word(ExecRegion::Ram, ((addr - RAM_START) >> 2) as usize);
            return Ok(());
        }
        if addr < ROM_START + ROM_SIZE || addr.wrapping_sub(NVM_START) < NVM_SIZE {
            return Err(BusFault::ReadOnly(addr));
        }
        match self.memmap.region_at(addr).map(|r| r.kind()) {
            Some(RegionKind::Mmio) => Err(BusFault::ByteAccessToMmio(addr)),
            _ => Err(BusFault::Unmapped(addr)),
        }
    }
}

fn read_word(mem: &[u8], offset: u32) -> u32 {
    let o = offset as usize;
    u32::from_le_bytes([mem[o], mem[o + 1], mem[o + 2], mem[o + 3]])
}

fn write_word(mem: &mut [u8], offset: u32, value: u32) {
    let o = offset as usize;
    mem[o..o + 4].copy_from_slice(&value.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use advm_soc::Mailbox;

    use super::*;

    fn bus() -> SocBus {
        SocBus::new(
            &Derivative::sc88a(),
            PlatformId::GoldenModel,
            PlatformFault::None,
        )
    }

    #[test]
    fn ram_roundtrips() {
        let mut b = bus();
        b.write32(RAM_START, 0xDEAD_BEEF).unwrap();
        assert_eq!(b.read32(RAM_START).unwrap(), 0xDEAD_BEEF);
        b.write8(RAM_START + 4, 0xAB).unwrap();
        assert_eq!(b.read8(RAM_START + 4).unwrap(), 0xAB);
    }

    #[test]
    fn rom_is_read_only() {
        let mut b = bus();
        assert_eq!(b.write32(0x100, 1), Err(BusFault::ReadOnly(0x100)));
        assert_eq!(b.write8(0x100, 1), Err(BusFault::ReadOnly(0x100)));
    }

    #[test]
    fn nvm_direct_store_faults_but_controller_path_works() {
        let mut b = bus();
        let nvm_base = advm_soc::memmap::NVM_START;
        assert!(matches!(b.write32(nvm_base, 1), Err(BusFault::ReadOnly(_))));
        assert_eq!(
            b.read32(nvm_base).unwrap(),
            0xFFFF_FFFF,
            "erased NVM reads 0xFF"
        );

        // Unlock and program through the controller.
        let nvmc = 0xE_0500;
        b.write32(nvmc, 0x55).unwrap(); // KEY
        b.write32(nvmc, 0xAA).unwrap();
        b.write32(nvmc + 0x08, 0x10).unwrap(); // ADDR (offset in NVM)
        b.write32(nvmc + 0x0C, 0x1234_5678).unwrap(); // DATA
        b.write32(nvmc + 0x14, 1).unwrap(); // CMD_WRITE
        b.advance(crate::periph::nvmc::WRITE_CYCLES);
        assert_eq!(b.read32(nvm_base + 0x10).unwrap(), 0x1234_5678);
        assert_eq!(b.nvm_word(0x10), 0x1234_5678);
    }

    #[test]
    fn misaligned_word_access_faults() {
        let mut b = bus();
        assert_eq!(
            b.read32(RAM_START + 2),
            Err(BusFault::Misaligned(RAM_START + 2))
        );
        assert_eq!(
            b.write32(RAM_START + 1, 0),
            Err(BusFault::Misaligned(RAM_START + 1))
        );
    }

    #[test]
    fn unmapped_hole_faults() {
        let mut b = bus();
        assert!(matches!(b.read32(0x7_0000), Err(BusFault::Unmapped(_))));
        assert!(
            matches!(b.read32(0xE_5000), Err(BusFault::Unmapped(_))),
            "MMIO hole"
        );
    }

    #[test]
    fn mmio_byte_access_faults() {
        let mut b = bus();
        assert!(matches!(
            b.read8(0xE_0100),
            Err(BusFault::ByteAccessToMmio(_))
        ));
        assert!(matches!(
            b.write8(0xE_0100, 1),
            Err(BusFault::ByteAccessToMmio(_))
        ));
    }

    #[test]
    fn uart_moves_with_derivative_d() {
        let mut a = bus();
        let mut d = SocBus::new(
            &Derivative::sc88d(),
            PlatformId::GoldenModel,
            PlatformFault::None,
        );
        // UART CTRL is at 0xE0000 on SC88-A but 0xE0800 on SC88-D.
        assert!(a.read32(0xE_0000).is_ok());
        assert!(matches!(d.read32(0xE_0000), Err(BusFault::Unmapped(_))));
        assert!(d.read32(0xE_0800).is_ok());
        assert!(matches!(a.read32(0xE_0800), Err(BusFault::Unmapped(_))));
    }

    #[test]
    fn page_geometry_follows_derivative() {
        let mut a = bus();
        let mut b2 = SocBus::new(
            &Derivative::sc88b(),
            PlatformId::GoldenModel,
            PlatformFault::None,
        );
        // Writing 8|ENABLE selects page 8 on SC88-A but page 4 on SC88-B.
        a.write32(0xE_0100, 8 | (1 << 8)).unwrap();
        b2.write32(0xE_0100, 8 | (1 << 8)).unwrap();
        assert_eq!(a.read32(0xE_0104).unwrap() & 0x1F, 8);
        assert_eq!((b2.read32(0xE_0104).unwrap() >> 1) & 0x1F, 4);
    }

    #[test]
    fn timer_irq_routes_to_intc() {
        let mut b = bus();
        b.write32(0xE_0300, 1).unwrap(); // INTC ENABLE line 0
        b.write32(0xE_0204, 5).unwrap(); // TIMER LOAD
        b.write32(0xE_0200, 0b011).unwrap(); // TIMER EN|IE
        b.advance(5);
        assert_eq!(b.pending_irq(), Some(0));
        b.write32(0xE_0308, 0).unwrap(); // ACK line 0
        assert_eq!(b.pending_irq(), None);
    }

    #[test]
    fn watchdog_bite_latches() {
        let mut b = bus();
        b.write32(0xE_0408, 10).unwrap(); // PERIOD
        b.write32(0xE_0400, 1).unwrap(); // EN
        b.advance(10);
        assert!(b.take_watchdog_bite());
        assert!(!b.take_watchdog_bite(), "edge consumed");
    }

    #[test]
    fn mailbox_reports_outcome() {
        let mut b = bus();
        let mb = Mailbox::new();
        b.write32(mb.reg(Mailbox::RESULT), Mailbox::PASS_MAGIC)
            .unwrap();
        b.write32(mb.reg(Mailbox::SIM_END), 1).unwrap();
        assert!(b.mailbox().sim_ended());
        assert!(b.mailbox().outcome().unwrap().passed());
    }

    #[test]
    fn es_dispatch_skew_redirects_table_fetches_only() {
        use advm_soc::memmap::ES_BASE;
        // Eight distinct words starting at the jump-table base; the
        // table itself is seven slots long.
        let program = advm_asm::assemble_str(
            ".ORG 0x30000\n    HALT #1\n    HALT #2\n    HALT #3\n    HALT #4\n    \
             HALT #5\n    HALT #6\n    HALT #7\n    HALT #8\n",
        )
        .unwrap();
        let mut image = advm_asm::Image::new();
        image.load_program(&program).unwrap();
        let mut clean = bus();
        clean.load_image(&image);
        let mut skewed = SocBus::new(
            &Derivative::sc88a(),
            PlatformId::GoldenModel,
            PlatformFault::EsDispatchSkewed,
        );
        skewed.load_image(&image);
        // Inside the table every fetch lands one slot down…
        assert_eq!(
            skewed.read32(ES_BASE).unwrap(),
            clean.read32(ES_BASE + 4).unwrap()
        );
        // …the last slot wraps to the first…
        assert_eq!(
            skewed.read32(ES_BASE + 24).unwrap(),
            clean.read32(ES_BASE).unwrap()
        );
        // …and fetches outside the table are untouched.
        assert_eq!(
            skewed.read32(ES_BASE + 28).unwrap(),
            clean.read32(ES_BASE + 28).unwrap()
        );
    }

    #[test]
    fn bus_wait_states_charge_extra_cycles_on_mmio_only() {
        let mut b = SocBus::new(
            &Derivative::sc88a(),
            PlatformId::GoldenModel,
            PlatformFault::BusExtraWaitStates,
        );
        let t0 = b.now();
        b.read32(0xE_FF10).unwrap(); // mailbox PLATFORM register
        assert_eq!(b.now(), t0 + BUS_WAIT_STATE_CYCLES);
        let t1 = b.now();
        b.write32(RAM_START, 7).unwrap();
        b.read32(RAM_START).unwrap();
        assert_eq!(b.now(), t1, "plain memory traffic stays free");
    }

    #[test]
    fn image_loads_into_rom() {
        let mut b = bus();
        let program = advm_asm::assemble_str("_main:\n  NOP\n  HALT #0\n").unwrap();
        let mut image = advm_asm::Image::new();
        image.load_program(&program).unwrap();
        b.load_image(&image);
        assert_eq!(b.read32(0x100).unwrap(), 0, "NOP encodes as zero");
    }
}
