//! First-divergence bisection over machine snapshots.
//!
//! When two platforms end a test in different states, the final-state
//! diff says *that* they disagree but not *where*. Because the fuel
//! budget is absolute (`set_fuel(n)` + [`crate::Platform::run`] runs to
//! exactly `n` retired instructions) and snapshots rewind a machine
//! byte-exactly, "machine state after n steps" is a pure function of
//! `n` — so the first divergent retired instruction can be found by
//! binary search: probe the midpoint from the last known-converged
//! snapshot, compare [`crate::Platform::state_digest`], and halve.
//! A 2-million-instruction run localizes in ~21 probes instead of a
//! lockstep instruction-by-instruction replay.

use std::fmt;

use advm_isa::decode;
use advm_soc::testbench::PlatformId;

use crate::platform::Platform;
use crate::savestate::{SaveState, SaveStateError};

/// The first retired instruction at which two platforms disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirstDivergence {
    /// 1-based retired-instruction count: executing this step first
    /// makes the architectural digests differ.
    pub step: u64,
    /// The platform on each side of the comparison.
    pub platform_a: PlatformId,
    /// Second compared platform.
    pub platform_b: PlatformId,
    /// Program counter each side was about to retire from.
    pub pc_a: u32,
    /// Program counter on side B.
    pub pc_b: u32,
    /// Disassembly of the instruction at `pc_a`.
    pub insn_a: String,
    /// Disassembly of the instruction at `pc_b`.
    pub insn_b: String,
    /// Trailing [`crate::ExecTrace`] disassembly through the divergent
    /// step on side A (empty when the platform has no debug
    /// visibility or tracing was not armed).
    pub context_a: String,
    /// Trace context on side B.
    pub context_b: String,
}

impl fmt::Display for FirstDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "first divergence at step {}: [{}] {} vs [{}] {}",
            self.step, self.platform_a, self.insn_a, self.platform_b, self.insn_b
        )?;
        if !self.context_a.is_empty() {
            writeln!(f, "[{}] trailing trace:", self.platform_a)?;
            for line in self.context_a.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        if !self.context_b.is_empty() {
            writeln!(f, "[{}] trailing trace:", self.platform_b)?;
            for line in self.context_b.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

fn run_to(p: &mut Platform, snap: &SaveState, step: u64) -> Result<(), SaveStateError> {
    p.restore(snap)?;
    p.set_fuel(step);
    p.run();
    Ok(())
}

fn disasm(p: &mut Platform, pc: u32) -> String {
    match p.bus().read32(pc) {
        Ok(word) => match decode(word) {
            Ok(insn) => format!("{pc:05X}: {insn}"),
            Err(_) => format!("{pc:05X}: .WORD 0x{word:08X}"),
        },
        Err(fault) => format!("{pc:05X}: <{fault}>"),
    }
}

/// Binary-searches the first retired instruction at which `a` and `b`
/// architecturally diverge, probing up to `max_steps` instructions.
///
/// Both machines must be freshly constructed and loaded with the same
/// test image (zero instructions retired); enable tracing beforehand to
/// get disassembly context in the report. Returns `Ok(None)` when the
/// digests still agree after `max_steps` instructions.
///
/// # Errors
///
/// Propagates [`SaveStateError`] from snapshot restore — impossible for
/// machines this function itself snapshots, but surfaced rather than
/// panicking.
pub fn bisect_divergence(
    a: &mut Platform,
    b: &mut Platform,
    max_steps: u64,
) -> Result<Option<FirstDivergence>, SaveStateError> {
    let mut snap_a = a.snapshot();
    let mut snap_b = b.snapshot();

    // Establish divergence at the horizon.
    run_to(a, &snap_a, max_steps)?;
    run_to(b, &snap_b, max_steps)?;
    if a.state_digest() == b.state_digest() {
        return Ok(None);
    }

    // Invariant: digests agree at `lo` (snapshots held), differ at `hi`.
    let mut lo = 0u64;
    let mut hi = max_steps;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        run_to(a, &snap_a, mid)?;
        run_to(b, &snap_b, mid)?;
        if a.state_digest() == b.state_digest() {
            lo = mid;
            snap_a = a.snapshot();
            snap_b = b.snapshot();
        } else {
            hi = mid;
        }
    }

    // Park both machines just before the divergent step for context.
    a.restore(&snap_a)?;
    b.restore(&snap_b)?;
    let pc_a = a.cpu().pc();
    let pc_b = b.cpu().pc();
    let insn_a = disasm(a, pc_a);
    let insn_b = disasm(b, pc_b);
    // Re-restore (disassembly reads may touch MMIO coverage), then run
    // through the divergent step so the trace window includes it.
    run_to(a, &snap_a, hi)?;
    run_to(b, &snap_b, hi)?;
    let context_a = a.trace().map(|t| t.disassembly()).unwrap_or_default();
    let context_b = b.trace().map(|t| t.disassembly()).unwrap_or_default();

    Ok(Some(FirstDivergence {
        step: hi,
        platform_a: a.id(),
        platform_b: b.id(),
        pc_a,
        pc_b,
        insn_a,
        insn_b,
        context_a,
        context_b,
    }))
}

#[cfg(test)]
mod tests {
    use advm_asm::{assemble_str, Image};
    use advm_soc::Derivative;

    use super::*;
    use crate::fault::PlatformFault;

    fn image(asm: &str) -> Image {
        let program = assemble_str(asm).unwrap_or_else(|e| panic!("{e}"));
        let mut image = Image::new();
        image.load_program(&program).unwrap();
        image
    }

    /// A scratch write-read-back program: under `MailboxScratchStuck`
    /// the read back at the 4th instruction returns 0 instead of 0x5A,
    /// which is the first architecturally visible difference.
    fn scratch_test() -> Image {
        image(
            "\
_main:
    NOP
    LOAD d1, #0x5A
    STORE [0xEFF14], d1
    LOAD d2, [0xEFF14]
    LOAD d3, #0x600D0000
    STORE [0xEFF00], d3
    STORE [0xEFF08], d3
    HALT #0
",
        )
    }

    #[test]
    fn bisection_finds_planted_single_instruction_divergence() {
        let deriv = Derivative::sc88a();
        let img = scratch_test();
        let mut clean = Platform::new(PlatformId::GoldenModel, &deriv);
        clean.enable_trace(16);
        clean.load_image(&img);
        let mut faulty = Platform::with_fault(
            PlatformId::ProductSilicon,
            &deriv,
            PlatformFault::MailboxScratchStuck,
        );
        faulty.load_image(&img);

        let report = bisect_divergence(&mut clean, &mut faulty, 1000)
            .unwrap()
            .expect("the scratch fault must diverge");
        // The digest covers mailbox scratch, so the stuck store is the
        // first divergent retired instruction (the clean side's scratch
        // becomes 0x5A, the faulty side's stays 0). `LOAD d1, #0x5A`
        // assembles to a two-instruction immediate sequence, so the
        // store retires as instruction 4: NOP, imm pair, STABS.
        assert_eq!(report.step, 4, "{report}");
        assert!(report.insn_a.contains("STABS"), "{}", report.insn_a);
        assert_eq!(report.pc_a, report.pc_b, "same stream up to the fault");
        assert!(
            report.context_a.contains("STABS"),
            "golden model trace context present: {}",
            report.context_a
        );
        assert!(
            report.context_b.is_empty(),
            "product silicon has no debug visibility"
        );
    }

    #[test]
    fn agreeing_platforms_bisect_to_none() {
        let deriv = Derivative::sc88a();
        let img = scratch_test();
        let mut a = Platform::new(PlatformId::GoldenModel, &deriv);
        a.load_image(&img);
        let mut b = Platform::new(PlatformId::Accelerator, &deriv);
        b.load_image(&img);
        assert_eq!(bisect_divergence(&mut a, &mut b, 1000).unwrap(), None);
    }
}
