//! Execution tracing — the bondout device's "extra hardware debugging
//! capabilities", also available on the golden model and RTL simulation.
//!
//! A trace records the retired program-counter stream (bounded), the
//! fetched instruction words, and a FNV signature over the whole
//! retirement history. Signatures compare cheaply across debug-visible
//! platforms: two platforms executing the same architectural stream have
//! equal signatures even when their cycle counts differ.

use std::fmt;

use advm_isa::decode;
use serde::{Deserialize, Serialize};

use crate::savestate::{put_u32, put_u64, SaveReader, SaveStateError};

/// One retired-instruction trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Program counter of the retired instruction.
    pub pc: u32,
    /// The fetched instruction word.
    pub word: u32,
}

/// A bounded execution trace with a full-history signature.
///
/// The retained window is a true ring buffer: recording is O(1) at any
/// capacity (the previous implementation shifted the whole window with
/// `Vec::remove(0)` once full — O(capacity) per retired instruction on
/// long exploration runs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Ring storage; once `ring.len() == capacity`, `head` is the
    /// oldest record's index and new records overwrite in place.
    ring: Vec<TraceRecord>,
    head: usize,
    capacity: usize,
    dropped: u64,
    signature: u64,
}

impl ExecTrace {
    /// A trace keeping at most `capacity` most-recent records (the
    /// signature always covers the full history).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Vec::new(),
            head: 0,
            capacity,
            dropped: 0,
            signature: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Records one retirement.
    pub fn record(&mut self, pc: u32, word: u32) {
        for b in pc.to_le_bytes().into_iter().chain(word.to_le_bytes()) {
            self.signature ^= u64::from(b);
            self.signature = self.signature.wrapping_mul(0x100_0000_01b3);
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(TraceRecord { pc, word });
            return;
        }
        self.ring[self.head] = TraceRecord { pc, word };
        self.head = (self.head + 1) % self.capacity;
        self.dropped += 1;
    }

    /// The retained (most recent) records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.iter().copied().collect()
    }

    /// Iterates the retained window, oldest record first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring[self.head..].iter().chain(&self.ring[..self.head])
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently retained in the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window holds no records.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records that fell off the front of the window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The FNV signature over the *entire* retirement history.
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Renders the retained window as a disassembly listing.
    pub fn disassembly(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier record(s) dropped ...\n",
                self.dropped
            ));
        }
        for r in self.iter() {
            match decode(r.word) {
                Ok(insn) => out.push_str(&format!("{:05X}: {insn}\n", r.pc)),
                Err(_) => out.push_str(&format!("{:05X}: .WORD 0x{:08X}\n", r.pc, r.word)),
            }
        }
        out
    }

    /// Serializes the trace: capacity, ring position, dropped count,
    /// signature and the raw ring storage (physical order, so a restored
    /// trace iterates in exactly the same oldest-first order).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.capacity as u64);
        put_u64(out, self.head as u64);
        put_u64(out, self.dropped);
        put_u64(out, self.signature);
        put_u32(out, self.ring.len() as u32);
        for r in &self.ring {
            put_u32(out, r.pc);
            put_u32(out, r.word);
        }
    }

    /// Reconstructs a trace from a snapshot body.
    pub(crate) fn from_save(r: &mut SaveReader<'_>) -> Result<Self, SaveStateError> {
        let capacity = usize::try_from(r.take_u64()?)
            .map_err(|_| SaveStateError::Corrupt("trace capacity out of range"))?;
        let head = usize::try_from(r.take_u64()?)
            .map_err(|_| SaveStateError::Corrupt("trace head out of range"))?;
        let dropped = r.take_u64()?;
        let signature = r.take_u64()?;
        let len = r.take_u32()? as usize;
        if len > capacity || (head != 0 && head >= len) {
            return Err(SaveStateError::Corrupt("trace ring geometry"));
        }
        let mut ring = Vec::with_capacity(len);
        for _ in 0..len {
            ring.push(TraceRecord {
                pc: r.take_u32()?,
                word: r.take_u32()?,
            });
        }
        Ok(Self {
            ring,
            head,
            capacity,
            dropped,
            signature,
        })
    }
}

/// One observed MMIO bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmioEvent {
    /// Bus cycle at which the transaction completed (wait states
    /// included).
    pub cycle: u64,
    /// Absolute register address.
    pub addr: u32,
    /// The value written, or the value the read returned.
    pub value: u32,
    /// `true` for a write, `false` for a read.
    pub write: bool,
}

/// A bounded MMIO transaction monitor.
///
/// Unlike [`ExecTrace`], which models silicon debug hardware and is
/// therefore restricted to debug-visible platforms, this monitor sits in
/// the *verification environment* — the test bench watches bus
/// transactions on every platform, the way the paper's test bench
/// observes device pins. It is scaffolding, not machine state: snapshots
/// never carry it, and an armed monitor does not perturb execution.
///
/// Same ring discipline as [`ExecTrace`]: O(1) recording, oldest records
/// dropped first, with [`MmioTrace::dropped`] counting the loss so
/// consumers can tell a complete history from a truncated one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmioTrace {
    ring: Vec<MmioEvent>,
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl MmioTrace {
    /// A monitor keeping at most `capacity` most-recent transactions.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Vec::new(),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Records one bus transaction.
    pub fn record(&mut self, event: MmioEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(event);
            return;
        }
        self.ring[self.head] = event;
        self.head = (self.head + 1) % self.capacity;
        self.dropped += 1;
    }

    /// The retained (most recent) transactions, oldest first.
    pub fn records(&self) -> Vec<MmioEvent> {
        self.iter().copied().collect()
    }

    /// Iterates the retained window, oldest transaction first.
    pub fn iter(&self) -> impl Iterator<Item = &MmioEvent> {
        self.ring[self.head..].iter().chain(&self.ring[..self.head])
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of transactions currently retained in the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Transactions that fell off the front of the window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl fmt::Display for ExecTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace[{} records, {} dropped, sig {:016x}]",
            self.len(),
            self.dropped,
            self.signature
        )
    }
}

#[cfg(test)]
mod tests {
    use advm_isa::{encode, Insn};

    use super::*;

    #[test]
    fn signature_covers_full_history() {
        let mut small = ExecTrace::new(2);
        let mut large = ExecTrace::new(100);
        for pc in (0x100..0x140).step_by(4) {
            small.record(pc, encode(&Insn::Nop));
            large.record(pc, encode(&Insn::Nop));
        }
        assert_eq!(
            small.signature(),
            large.signature(),
            "window size is invisible"
        );
        assert_eq!(small.records().len(), 2);
        assert_eq!(small.dropped(), 14);
        assert_eq!(large.dropped(), 0);
    }

    #[test]
    fn different_streams_have_different_signatures() {
        let mut a = ExecTrace::new(8);
        let mut b = ExecTrace::new(8);
        a.record(0x100, encode(&Insn::Nop));
        b.record(0x104, encode(&Insn::Nop));
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn disassembly_renders_instructions_and_data() {
        let mut trace = ExecTrace::new(8);
        trace.record(0x100, encode(&Insn::Ret));
        trace.record(0x104, 0xFFFF_FFFF);
        let text = trace.disassembly();
        assert!(text.contains("00100: RETURN"), "{text}");
        assert!(text.contains(".WORD 0xFFFFFFFF"), "{text}");
    }

    #[test]
    fn ring_window_keeps_most_recent_in_order() {
        let mut trace = ExecTrace::new(3);
        for pc in (0x100..0x118).step_by(4) {
            trace.record(pc, encode(&Insn::Nop));
        }
        let pcs: Vec<u32> = trace.records().iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0x10C, 0x110, 0x114], "oldest first after wrap");
        assert_eq!(trace.dropped(), 3);
        assert_eq!(trace.capacity(), 3);
        let listing = trace.disassembly();
        assert!(listing.starts_with("... 3 earlier record(s) dropped ...\n"));
        let first_insn = listing.lines().nth(1).unwrap();
        assert!(first_insn.starts_with("0010C:"), "{listing}");
    }

    #[test]
    fn zero_capacity_keeps_signature_only() {
        let mut trace = ExecTrace::new(0);
        trace.record(0x100, 0);
        assert!(trace.records().is_empty());
        assert_ne!(trace.signature(), ExecTrace::new(0).signature());
    }

    #[test]
    fn one_capacity_retains_only_the_newest_record() {
        let mut trace = ExecTrace::new(1);
        for pc in (0x100..0x110).step_by(4) {
            trace.record(pc, encode(&Insn::Nop));
        }
        let pcs: Vec<u32> = trace.records().iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0x10C], "only the newest survives");
        assert_eq!(trace.dropped(), 3);
        assert_eq!(trace.capacity(), 1);
    }

    #[test]
    fn from_save_rejects_bad_ring_geometry() {
        let mut trace = ExecTrace::new(4);
        for pc in (0x100..0x120).step_by(4) {
            trace.record(pc, 0);
        }
        let mut bytes = Vec::new();
        trace.save_state(&mut bytes);
        // Corrupt the capacity field (first u64) down to 1: the stored
        // ring of 4 records no longer fits.
        bytes[..8].copy_from_slice(&1u64.to_le_bytes());
        let mut r = SaveReader::new(&bytes);
        assert_eq!(
            ExecTrace::from_save(&mut r),
            Err(SaveStateError::Corrupt("trace ring geometry"))
        );
    }

    #[test]
    fn mmio_ring_keeps_most_recent_in_order() {
        let mut monitor = MmioTrace::new(3);
        for i in 0..5u32 {
            monitor.record(MmioEvent {
                cycle: u64::from(i),
                addr: 0xE0000 + 4 * i,
                value: i,
                write: i % 2 == 0,
            });
        }
        let addrs: Vec<u32> = monitor.records().iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![0xE0008, 0xE000C, 0xE0010], "oldest first");
        assert_eq!(monitor.dropped(), 2);
        assert_eq!(monitor.len(), 3);
        assert_eq!(monitor.capacity(), 3);
        assert!(!monitor.is_empty());
    }

    #[test]
    fn mmio_zero_capacity_counts_drops_only() {
        let mut monitor = MmioTrace::new(0);
        monitor.record(MmioEvent {
            cycle: 0,
            addr: 0xE0000,
            value: 0,
            write: true,
        });
        assert!(monitor.records().is_empty());
        assert_eq!(monitor.dropped(), 1);
    }

    #[test]
    fn mmio_one_capacity_retains_only_the_newest_event() {
        let mut monitor = MmioTrace::new(1);
        for i in 0..4u32 {
            monitor.record(MmioEvent {
                cycle: u64::from(i),
                addr: 0xE0000 + 4 * i,
                value: i,
                write: true,
            });
        }
        let records = monitor.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].addr, 0xE000C, "only the newest survives");
        assert_eq!(monitor.dropped(), 3);
    }

    mod props {
        use proptest::prelude::*;

        use super::super::ExecTrace;

        proptest! {
            // Pinned so CI case counts don't drift with proptest defaults.
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Serialization round-trip: ring contents, head position,
            /// dropped count and full-history signature all survive, and
            /// the restored trace iterates in the same oldest-first
            /// order.
            #[test]
            fn save_state_roundtrips(
                capacity in 0usize..8,
                stream in proptest::collection::vec((0u32..0x1000, 0u32..u32::MAX), 0..24),
            ) {
                let mut trace = ExecTrace::new(capacity);
                for &(pc, word) in &stream {
                    trace.record(pc, word);
                }
                let mut bytes = Vec::new();
                trace.save_state(&mut bytes);
                let mut r = super::super::SaveReader::new(&bytes);
                let back = ExecTrace::from_save(&mut r).expect("round-trip");
                prop_assert_eq!(&back, &trace, "full structural equality");
                prop_assert_eq!(back.signature(), trace.signature());
                prop_assert_eq!(back.dropped(), trace.dropped());
                prop_assert_eq!(back.records(), trace.records(), "iteration order");
            }
        }
    }
}
