//! Execution tracing — the bondout device's "extra hardware debugging
//! capabilities", also available on the golden model and RTL simulation.
//!
//! A trace records the retired program-counter stream (bounded), the
//! fetched instruction words, and a FNV signature over the whole
//! retirement history. Signatures compare cheaply across debug-visible
//! platforms: two platforms executing the same architectural stream have
//! equal signatures even when their cycle counts differ.

use std::fmt;

use advm_isa::decode;
use serde::{Deserialize, Serialize};

/// One retired-instruction trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Program counter of the retired instruction.
    pub pc: u32,
    /// The fetched instruction word.
    pub word: u32,
}

/// A bounded execution trace with a full-history signature.
///
/// The retained window is a true ring buffer: recording is O(1) at any
/// capacity (the previous implementation shifted the whole window with
/// `Vec::remove(0)` once full — O(capacity) per retired instruction on
/// long exploration runs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Ring storage; once `ring.len() == capacity`, `head` is the
    /// oldest record's index and new records overwrite in place.
    ring: Vec<TraceRecord>,
    head: usize,
    capacity: usize,
    dropped: u64,
    signature: u64,
}

impl ExecTrace {
    /// A trace keeping at most `capacity` most-recent records (the
    /// signature always covers the full history).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Vec::new(),
            head: 0,
            capacity,
            dropped: 0,
            signature: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Records one retirement.
    pub fn record(&mut self, pc: u32, word: u32) {
        for b in pc.to_le_bytes().into_iter().chain(word.to_le_bytes()) {
            self.signature ^= u64::from(b);
            self.signature = self.signature.wrapping_mul(0x100_0000_01b3);
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(TraceRecord { pc, word });
            return;
        }
        self.ring[self.head] = TraceRecord { pc, word };
        self.head = (self.head + 1) % self.capacity;
        self.dropped += 1;
    }

    /// The retained (most recent) records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.iter().copied().collect()
    }

    /// Iterates the retained window, oldest record first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring[self.head..].iter().chain(&self.ring[..self.head])
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records that fell off the front of the window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The FNV signature over the *entire* retirement history.
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Renders the retained window as a disassembly listing.
    pub fn disassembly(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier record(s) dropped ...\n",
                self.dropped
            ));
        }
        for r in self.iter() {
            match decode(r.word) {
                Ok(insn) => out.push_str(&format!("{:05X}: {insn}\n", r.pc)),
                Err(_) => out.push_str(&format!("{:05X}: .WORD 0x{:08X}\n", r.pc, r.word)),
            }
        }
        out
    }
}

impl fmt::Display for ExecTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace[{} records, {} dropped, sig {:016x}]",
            self.ring.len(),
            self.dropped,
            self.signature
        )
    }
}

#[cfg(test)]
mod tests {
    use advm_isa::{encode, Insn};

    use super::*;

    #[test]
    fn signature_covers_full_history() {
        let mut small = ExecTrace::new(2);
        let mut large = ExecTrace::new(100);
        for pc in (0x100..0x140).step_by(4) {
            small.record(pc, encode(&Insn::Nop));
            large.record(pc, encode(&Insn::Nop));
        }
        assert_eq!(
            small.signature(),
            large.signature(),
            "window size is invisible"
        );
        assert_eq!(small.records().len(), 2);
        assert_eq!(small.dropped(), 14);
        assert_eq!(large.dropped(), 0);
    }

    #[test]
    fn different_streams_have_different_signatures() {
        let mut a = ExecTrace::new(8);
        let mut b = ExecTrace::new(8);
        a.record(0x100, encode(&Insn::Nop));
        b.record(0x104, encode(&Insn::Nop));
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn disassembly_renders_instructions_and_data() {
        let mut trace = ExecTrace::new(8);
        trace.record(0x100, encode(&Insn::Ret));
        trace.record(0x104, 0xFFFF_FFFF);
        let text = trace.disassembly();
        assert!(text.contains("00100: RETURN"), "{text}");
        assert!(text.contains(".WORD 0xFFFFFFFF"), "{text}");
    }

    #[test]
    fn ring_window_keeps_most_recent_in_order() {
        let mut trace = ExecTrace::new(3);
        for pc in (0x100..0x118).step_by(4) {
            trace.record(pc, encode(&Insn::Nop));
        }
        let pcs: Vec<u32> = trace.records().iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0x10C, 0x110, 0x114], "oldest first after wrap");
        assert_eq!(trace.dropped(), 3);
        assert_eq!(trace.capacity(), 3);
        let listing = trace.disassembly();
        assert!(listing.starts_with("... 3 earlier record(s) dropped ...\n"));
        let first_insn = listing.lines().nth(1).unwrap();
        assert!(first_insn.starts_with("0010C:"), "{listing}");
    }

    #[test]
    fn zero_capacity_keeps_signature_only() {
        let mut trace = ExecTrace::new(0);
        trace.record(0x100, 0);
        assert!(trace.records().is_empty());
        assert_ne!(trace.signature(), ExecTrace::new(0).signature());
    }
}
