//! Cross-platform divergence analysis.
//!
//! Running one test suite on six platforms only helps if disagreement is
//! *detected*: "if they don't [execute the code the same way] then a bug
//! or issue has been found in that particular simulation domain" (§1 of
//! the paper). This module compares per-platform [`RunResult`]s and
//! identifies the odd ones out by majority vote.

use std::fmt;

use advm_soc::testbench::PlatformId;

use crate::platform::RunResult;

/// The comparable verdict extracted from a run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Verdict {
    passed: bool,
    detail: Option<u16>,
}

fn verdict(result: &RunResult) -> Verdict {
    Verdict {
        passed: result.passed(),
        detail: result.outcome.map(|o| match o {
            advm_soc::TestOutcome::Pass { detail } => detail,
            advm_soc::TestOutcome::Fail { detail } => detail,
        }),
    }
}

/// Report of a cross-platform comparison for one test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Whether every platform agreed.
    pub consistent: bool,
    /// Platforms disagreeing with the majority verdict.
    pub divergent: Vec<PlatformId>,
    /// Per-platform one-line summaries.
    pub summaries: Vec<String>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.consistent {
            writeln!(f, "consistent across {} platforms", self.summaries.len())?;
        } else {
            writeln!(
                f,
                "DIVERGENCE: {}",
                self.divergent
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        for s in &self.summaries {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// Compares run results of *the same test* across platforms.
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn compare(results: &[RunResult]) -> DivergenceReport {
    assert!(!results.is_empty(), "compare requires at least one result");
    let verdicts: Vec<Verdict> = results.iter().map(verdict).collect();

    // Majority verdict (ties resolved toward the first seen).
    let mut counts: Vec<(Verdict, usize)> = Vec::new();
    for v in &verdicts {
        match counts.iter_mut().find(|(cv, _)| cv == v) {
            Some((_, n)) => *n += 1,
            None => counts.push((v.clone(), 1)),
        }
    }
    let majority = counts
        .iter()
        .max_by_key(|(_, n)| *n)
        .map(|(v, _)| v.clone())
        .expect("non-empty results");

    let divergent: Vec<PlatformId> = results
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| **v != majority)
        .map(|(r, _)| r.platform)
        .collect();

    DivergenceReport {
        consistent: divergent.is_empty(),
        divergent,
        summaries: results.iter().map(ToString::to_string).collect(),
    }
}

#[cfg(test)]
mod tests {
    use advm_soc::TestOutcome;

    use crate::platform::EndReason;

    use super::*;

    fn result(platform: PlatformId, pass: bool) -> RunResult {
        RunResult {
            platform,
            end: EndReason::SimEnd,
            outcome: Some(if pass {
                TestOutcome::Pass { detail: 0 }
            } else {
                TestOutcome::Fail { detail: 1 }
            }),
            insns: 10,
            cycles: 10,
            console: String::new(),
            uart_tx: Vec::new(),
            dbg_markers: Vec::new(),
            mmio_touched: Vec::new(),
        }
    }

    #[test]
    fn all_agree_is_consistent() {
        let report = compare(&[
            result(PlatformId::GoldenModel, true),
            result(PlatformId::RtlSim, true),
            result(PlatformId::GateSim, true),
        ]);
        assert!(report.consistent);
        assert!(report.divergent.is_empty());
    }

    #[test]
    fn single_platform_divergence_identified() {
        let report = compare(&[
            result(PlatformId::GoldenModel, true),
            result(PlatformId::RtlSim, false),
            result(PlatformId::GateSim, true),
            result(PlatformId::Accelerator, true),
        ]);
        assert!(!report.consistent);
        assert_eq!(report.divergent, vec![PlatformId::RtlSim]);
    }

    #[test]
    fn all_fail_is_consistent_too() {
        // A test failing everywhere is a *design or test* bug, not a
        // platform divergence.
        let report = compare(&[
            result(PlatformId::GoldenModel, false),
            result(PlatformId::RtlSim, false),
        ]);
        assert!(report.consistent);
    }

    #[test]
    fn display_mentions_divergent_platform() {
        let report = compare(&[
            result(PlatformId::GoldenModel, true),
            result(PlatformId::RtlSim, false),
            result(PlatformId::Bondout, true),
        ]);
        let text = report.to_string();
        assert!(text.contains("DIVERGENCE"), "{text}");
        assert!(text.contains("rtl"), "{text}");
    }

    #[test]
    #[should_panic(expected = "at least one result")]
    fn empty_comparison_panics() {
        compare(&[]);
    }
}
