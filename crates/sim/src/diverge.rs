//! Cross-platform divergence analysis.
//!
//! Running one test suite on six platforms only helps if disagreement is
//! *detected*: "if they don't [execute the code the same way] then a bug
//! or issue has been found in that particular simulation domain" (§1 of
//! the paper). This module compares per-platform [`RunResult`]s and
//! identifies the odd ones out by majority vote.

use std::fmt;

use advm_soc::testbench::PlatformId;

use crate::bisect::FirstDivergence;
use crate::platform::RunResult;

/// The comparable verdict extracted from a run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Verdict {
    passed: bool,
    detail: Option<u16>,
}

fn verdict(result: &RunResult) -> Verdict {
    Verdict {
        passed: result.passed(),
        detail: result.outcome.map(|o| match o {
            advm_soc::TestOutcome::Pass { detail } => detail,
            advm_soc::TestOutcome::Fail { detail } => detail,
        }),
    }
}

/// Report of a cross-platform comparison for one test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Whether every platform agreed.
    pub consistent: bool,
    /// Platforms disagreeing with the majority verdict.
    pub divergent: Vec<PlatformId>,
    /// Whether the blame assignment is arbitrary: the vote tied and no
    /// golden model was present to anchor it, so `divergent` names the
    /// side that happened to be seen second — not a platform proven
    /// wrong. Consumers should treat such reports as "platforms
    /// disagree" rather than "these platforms are broken".
    pub ambiguous: bool,
    /// Per-platform one-line summaries.
    pub summaries: Vec<String>,
    /// First divergent retired instruction, when a bisection was run
    /// (see [`crate::bisect::bisect_divergence`]).
    pub bisection: Option<FirstDivergence>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.consistent {
            writeln!(f, "consistent across {} platforms", self.summaries.len())?;
        } else {
            writeln!(
                f,
                "DIVERGENCE{}: {}",
                if self.ambiguous {
                    " (ambiguous tie — no golden model to anchor blame)"
                } else {
                    ""
                },
                self.divergent
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        for s in &self.summaries {
            writeln!(f, "  {s}")?;
        }
        if let Some(bisection) = &self.bisection {
            write!(f, "{bisection}")?;
        }
        Ok(())
    }
}

/// A typed comparison failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceError {
    /// There are no results to compare.
    Empty,
}

impl fmt::Display for DivergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceError::Empty => f.write_str("no run results to compare"),
        }
    }
}

impl std::error::Error for DivergenceError {}

/// Compares run results of *the same test* across platforms.
///
/// The majority verdict wins. A tied vote is anchored on the golden
/// model when one is present — the reference model is the specification,
/// so in a 2-vs-2 (or 1-vs-1) split the platforms disagreeing with it
/// are the divergent ones. Without a golden model a tie resolves toward
/// the first verdict seen, which keeps the result deterministic but
/// arbitrary — the report carries
/// [`ambiguous`](DivergenceReport::ambiguous)` = true` so consumers can
/// tell this apart from a true majority verdict. Campaigns should
/// include the reference platform.
///
/// # Errors
///
/// [`DivergenceError::Empty`] when `results` is empty.
pub fn compare(results: &[RunResult]) -> Result<DivergenceReport, DivergenceError> {
    if results.is_empty() {
        return Err(DivergenceError::Empty);
    }
    let verdicts: Vec<Verdict> = results.iter().map(verdict).collect();

    let mut counts: Vec<(Verdict, usize)> = Vec::new();
    for v in &verdicts {
        match counts.iter_mut().find(|(cv, _)| cv == v) {
            Some((_, n)) => *n += 1,
            None => counts.push((v.clone(), 1)),
        }
    }
    let top = counts.iter().map(|(_, n)| *n).max().expect("non-empty");
    let tied = counts.iter().filter(|(_, n)| *n == top).count() > 1;
    let golden = results
        .iter()
        .position(|r| r.platform == PlatformId::GoldenModel);
    let majority = match (tied, golden) {
        // Anchor tied votes on the reference model's verdict.
        (true, Some(i)) => verdicts[i].clone(),
        _ => counts
            .iter()
            .find(|(_, n)| *n == top)
            .map(|(v, _)| v.clone())
            .expect("non-empty"),
    };

    let divergent: Vec<PlatformId> = results
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| **v != majority)
        .map(|(r, _)| r.platform)
        .collect();

    Ok(DivergenceReport {
        consistent: divergent.is_empty(),
        ambiguous: tied && golden.is_none() && !divergent.is_empty(),
        divergent,
        summaries: results.iter().map(ToString::to_string).collect(),
        bisection: None,
    })
}

#[cfg(test)]
mod tests {
    use advm_soc::TestOutcome;

    use crate::platform::EndReason;

    use super::*;

    fn result(platform: PlatformId, pass: bool) -> RunResult {
        RunResult {
            platform,
            end: EndReason::SimEnd,
            outcome: Some(if pass {
                TestOutcome::Pass { detail: 0 }
            } else {
                TestOutcome::Fail { detail: 1 }
            }),
            insns: 10,
            cycles: 10,
            console: String::new(),
            uart_tx: Vec::new(),
            dbg_markers: Vec::new(),
            mmio_touched: Vec::new(),
            decode: crate::decoded::DecodeStats::default(),
        }
    }

    #[test]
    fn all_agree_is_consistent() {
        let report = compare(&[
            result(PlatformId::GoldenModel, true),
            result(PlatformId::RtlSim, true),
            result(PlatformId::GateSim, true),
        ])
        .unwrap();
        assert!(report.consistent);
        assert!(report.divergent.is_empty());
    }

    #[test]
    fn single_platform_divergence_identified() {
        let report = compare(&[
            result(PlatformId::GoldenModel, true),
            result(PlatformId::RtlSim, false),
            result(PlatformId::GateSim, true),
            result(PlatformId::Accelerator, true),
        ])
        .unwrap();
        assert!(!report.consistent);
        assert_eq!(report.divergent, vec![PlatformId::RtlSim]);
    }

    #[test]
    fn all_fail_is_consistent_too() {
        // A test failing everywhere is a *design or test* bug, not a
        // platform divergence.
        let report = compare(&[
            result(PlatformId::GoldenModel, false),
            result(PlatformId::RtlSim, false),
        ])
        .unwrap();
        assert!(report.consistent);
    }

    #[test]
    fn one_vs_one_tie_anchors_on_golden() {
        // The smallest audit campaign: reference + one audited platform.
        let report = compare(&[
            result(PlatformId::GoldenModel, true),
            result(PlatformId::RtlSim, false),
        ])
        .unwrap();
        assert!(!report.consistent);
        assert_eq!(report.divergent, vec![PlatformId::RtlSim]);
        // Order must not matter: the golden model still wins the tie.
        let reversed = compare(&[
            result(PlatformId::RtlSim, false),
            result(PlatformId::GoldenModel, true),
        ])
        .unwrap();
        assert_eq!(reversed.divergent, vec![PlatformId::RtlSim]);
    }

    #[test]
    fn two_vs_two_tie_blames_the_non_golden_side() {
        let report = compare(&[
            result(PlatformId::RtlSim, false),
            result(PlatformId::GateSim, false),
            result(PlatformId::GoldenModel, true),
            result(PlatformId::Bondout, true),
        ])
        .unwrap();
        assert!(!report.consistent);
        assert_eq!(
            report.divergent,
            vec![PlatformId::RtlSim, PlatformId::GateSim],
            "the side disagreeing with the golden model is divergent"
        );
    }

    #[test]
    fn three_vs_three_tie_blames_the_non_golden_side() {
        let report = compare(&[
            result(PlatformId::RtlSim, false),
            result(PlatformId::GateSim, false),
            result(PlatformId::Accelerator, false),
            result(PlatformId::GoldenModel, true),
            result(PlatformId::Bondout, true),
            result(PlatformId::ProductSilicon, true),
        ])
        .unwrap();
        assert_eq!(
            report.divergent,
            vec![
                PlatformId::RtlSim,
                PlatformId::GateSim,
                PlatformId::Accelerator
            ]
        );
    }

    #[test]
    fn tie_without_golden_resolves_to_first_seen_but_is_flagged_ambiguous() {
        // Documented fallback: deterministic but arbitrary — and the
        // report says so instead of silently blaming one side.
        let report = compare(&[
            result(PlatformId::RtlSim, true),
            result(PlatformId::GateSim, false),
        ])
        .unwrap();
        assert_eq!(report.divergent, vec![PlatformId::GateSim]);
        assert!(report.ambiguous, "arbitrary tie-break must be flagged");
        let text = report.to_string();
        assert!(text.contains("ambiguous tie"), "{text}");

        // Golden-anchored ties and true majorities are NOT ambiguous.
        let anchored = compare(&[
            result(PlatformId::GoldenModel, true),
            result(PlatformId::GateSim, false),
        ])
        .unwrap();
        assert!(!anchored.ambiguous);
        assert!(!anchored.to_string().contains("ambiguous"), "{anchored}");
        let majority = compare(&[
            result(PlatformId::RtlSim, true),
            result(PlatformId::GateSim, true),
            result(PlatformId::Bondout, false),
        ])
        .unwrap();
        assert!(!majority.ambiguous);
    }

    #[test]
    fn clear_majority_can_still_outvote_golden() {
        // No tie: if the reference model itself is the odd one out, the
        // majority names *it* divergent — a golden-model bug.
        let report = compare(&[
            result(PlatformId::GoldenModel, false),
            result(PlatformId::RtlSim, true),
            result(PlatformId::GateSim, true),
        ])
        .unwrap();
        assert_eq!(report.divergent, vec![PlatformId::GoldenModel]);
    }

    #[test]
    fn display_mentions_divergent_platform() {
        let report = compare(&[
            result(PlatformId::GoldenModel, true),
            result(PlatformId::RtlSim, false),
            result(PlatformId::Bondout, true),
        ])
        .unwrap();
        let text = report.to_string();
        assert!(text.contains("DIVERGENCE"), "{text}");
        assert!(text.contains("rtl"), "{text}");
    }

    #[test]
    fn empty_comparison_is_a_typed_error() {
        assert_eq!(compare(&[]), Err(DivergenceError::Empty));
        assert!(DivergenceError::Empty
            .to_string()
            .contains("no run results"));
    }
}
