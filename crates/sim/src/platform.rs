//! The six execution platforms of the paper's §1.
//!
//! All platforms execute the same architectural core ([`crate::cpu`]);
//! they differ in:
//!
//! * **cycle modelling** — RTL and gate-level simulations charge
//!   realistic per-instruction costs (gate level at half clock plus a
//!   long reset sequence); functional platforms charge one cycle each,
//! * **debug visibility** — the golden model, RTL sim and bondout device
//!   record `DBG` markers and a retirement trace; accelerator and product
//!   silicon are black boxes,
//! * **fault injection** — a platform can carry a hardware bug (see
//!   [`PlatformFault`]), which is how cross-platform divergence is
//!   exercised.

use std::fmt;

use advm_asm::Image;
use advm_soc::testbench::{PlatformId, TestOutcome};
use advm_soc::Derivative;

use crate::bus::SocBus;
use crate::cpu::{BatchExit, CostModel, Cpu};
use crate::decoded::{DecodeStats, DecodedProgram};
use crate::fault::PlatformFault;
use crate::savestate::{
    fault_from_tag, fault_tag, fnv1a, platform_from_code, put_bool, put_u32, put_u64, SaveReader,
    SaveState, SaveStateError, FNV_BASIS, SAVESTATE_MAGIC, SAVESTATE_VERSION,
};
use crate::trace::ExecTrace;

/// Why a platform run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndReason {
    /// The test wrote the mailbox `SIM_END` register.
    SimEnd,
    /// A `HALT` instruction retired.
    Halt(u8),
    /// The instruction budget was exhausted (hung test).
    OutOfFuel,
    /// Execution hit a fatal condition (unhandled trap, double fault).
    Fatal(String),
}

impl fmt::Display for EndReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndReason::SimEnd => f.write_str("sim-end"),
            EndReason::Halt(code) => write!(f, "halt({code})"),
            EndReason::OutOfFuel => f.write_str("out-of-fuel"),
            EndReason::Fatal(msg) => write!(f, "fatal: {msg}"),
        }
    }
}

/// The result of running one test image on one platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Which platform ran.
    pub platform: PlatformId,
    /// Why the run ended.
    pub end: EndReason,
    /// The mailbox-reported outcome, if any.
    pub outcome: Option<TestOutcome>,
    /// Instructions retired.
    pub insns: u64,
    /// Cycles consumed (platform-specific cost model).
    pub cycles: u64,
    /// Mailbox console output.
    pub console: String,
    /// UART transmit log.
    pub uart_tx: Vec<u8>,
    /// `DBG` markers, recorded only on debug-visible platforms.
    pub dbg_markers: Vec<u8>,
    /// Every MMIO register address the run touched (register coverage).
    pub mmio_touched: Vec<u32>,
    /// Decode-cache counters for the run (perf telemetry, never part of
    /// the architectural verdict).
    pub decode: DecodeStats,
}

impl RunResult {
    /// Whether the run counts as a pass: the test reported PASS and ended
    /// cleanly (mailbox sim-end or a `HALT`).
    pub fn passed(&self) -> bool {
        matches!(self.outcome, Some(TestOutcome::Pass { .. }))
            && matches!(self.end, EndReason::SimEnd | EndReason::Halt(_))
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} after {} insns / {} cycles ({})",
            self.platform,
            match self.outcome {
                Some(o) => o.to_string(),
                None => "NO-RESULT".to_owned(),
            },
            self.insns,
            self.cycles,
            self.end,
        )
    }
}

/// Default instruction budget per run.
pub const DEFAULT_FUEL: u64 = 2_000_000;

/// One execution platform instance, loaded with a derivative's hardware
/// configuration.
#[derive(Debug, Clone)]
pub struct Platform {
    id: PlatformId,
    cpu: Cpu,
    bus: SocBus,
    cost: CostModel,
    reset_cycles: u64,
    fuel: u64,
    trace: Option<ExecTrace>,
    fault: PlatformFault,
    /// Whether the reset sequence has been charged. Reset happens once
    /// per machine, not once per [`Platform::run`] call — a machine
    /// resumed from a snapshot must not come out of reset twice.
    reset_done: bool,
}

impl Platform {
    /// Creates a fault-free platform for a derivative.
    pub fn new(id: PlatformId, derivative: &Derivative) -> Self {
        Self::with_fault(id, derivative, PlatformFault::None)
    }

    /// Creates a platform carrying an injected hardware fault.
    pub fn with_fault(id: PlatformId, derivative: &Derivative, fault: PlatformFault) -> Self {
        let (cost, reset_cycles) = match id {
            PlatformId::RtlSim => (CostModel::rtl(), 16),
            PlatformId::GateSim => (CostModel::gate(), 200),
            _ => (CostModel::functional(), 1),
        };
        Self {
            id,
            cpu: Cpu::new(),
            bus: SocBus::new(derivative, id, fault),
            cost,
            reset_cycles,
            fuel: DEFAULT_FUEL,
            trace: None,
            fault,
            reset_done: false,
        }
    }

    /// Arms execution tracing (retired PC + instruction word, bounded to
    /// `capacity` records; the signature covers the full history).
    ///
    /// Tracing is a *debug capability*: it is available only on
    /// debug-visible platforms — the golden model, RTL simulation and the
    /// bondout device. On black-box platforms this call is ignored, just
    /// as a logic analyser has nothing to probe on product silicon.
    pub fn enable_trace(&mut self, capacity: usize) {
        if self.id.has_debug_visibility() {
            self.trace = Some(ExecTrace::new(capacity));
        }
    }

    /// The execution trace, if armed and supported.
    pub fn trace(&self) -> Option<&ExecTrace> {
        self.trace.as_ref()
    }

    /// Arms the test-bench MMIO bus monitor (bounded to `capacity`
    /// transactions). Unlike [`Platform::enable_trace`] this works on
    /// *every* platform: the monitor models the verification
    /// environment watching bus pins, not on-chip debug hardware, so
    /// even product silicon can be observed this way.
    pub fn enable_mmio_trace(&mut self, capacity: usize) {
        self.bus.enable_mmio_trace(capacity);
    }

    /// The MMIO bus monitor, if armed.
    pub fn mmio_trace(&self) -> Option<&crate::trace::MmioTrace> {
        self.bus.mmio_trace()
    }

    /// The platform identity.
    pub fn id(&self) -> PlatformId {
        self.id
    }

    /// The injected hardware fault this machine carries.
    pub fn fault(&self) -> PlatformFault {
        self.fault
    }

    /// Overrides the instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Loads an assembled image into the platform's memory.
    pub fn load_image(&mut self, image: &Image) {
        self.bus.load_image(image);
    }

    /// Loads an image together with its shared predecode artifact: the
    /// decode cache is seeded from `decoded` instead of decoding each
    /// word on first fetch. The artifact must be built from the same
    /// image (see [`DecodedProgram::from_image`]); campaigns build it
    /// once per deduplicated image and share it across every worker and
    /// platform.
    pub fn load_prebuilt(&mut self, image: &Image, decoded: &DecodedProgram) {
        self.bus.load_image(image);
        self.bus.seed_decoded(decoded);
    }

    /// Enables or disables the predecoded-instruction cache (default:
    /// enabled). The architectural stream is identical either way;
    /// disabling re-decodes every fetch, the baseline the benches
    /// compare against.
    pub fn set_decode_cache(&mut self, enabled: bool) {
        self.bus.set_decode_cache(enabled);
    }

    /// Enables or disables superblock dispatch (default: enabled).
    /// Blocks chain straight-line decoded instructions over the decode
    /// cache and execute whole between run-loop boundary checks; the
    /// architectural stream is identical either way. Runtime
    /// configuration, not machine state: snapshots neither capture nor
    /// restore it, so re-apply after [`Platform::from_snapshot`] when a
    /// campaign runs with blocks off.
    pub fn set_superblocks(&mut self, enabled: bool) {
        self.bus.set_superblocks(enabled);
    }

    /// Whether superblock dispatch is enabled.
    pub fn superblocks_enabled(&self) -> bool {
        self.bus.superblocks_enabled()
    }

    /// Direct bus access for white-box assertions in tests/experiments.
    pub fn bus(&mut self) -> &mut SocBus {
        &mut self.bus
    }

    /// Direct CPU access for white-box assertions (bondout-style debug).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Runs until the test ends the simulation, halts, faults fatally or
    /// runs out of fuel.
    pub fn run(&mut self) -> RunResult {
        // Reset sequence: gate-level netlists take a long time to come
        // out of reset; everything else is quick. Charged once per
        // machine — a resumed or forked run continues mid-flight.
        if !self.reset_done {
            self.bus.advance(self.reset_cycles);
            self.reset_done = true;
        }

        let mut dbg_markers = Vec::new();
        let debug_visible = self.id.has_debug_visibility();
        // The budget is absolute across repeated `run` calls, matching
        // the legacy per-step driver's `retired >= fuel` check.
        let remaining = self.fuel.saturating_sub(self.cpu.retired());
        let exit = self.cpu.run_observed(
            &mut self.bus,
            &self.cost,
            remaining,
            self.trace.as_mut(),
            debug_visible.then_some(&mut dbg_markers),
        );
        let end = match exit {
            BatchExit::SimEnd => EndReason::SimEnd,
            BatchExit::Halted { code } => EndReason::Halt(code),
            BatchExit::OutOfFuel => EndReason::OutOfFuel,
            BatchExit::Fatal(fatal) => EndReason::Fatal(fatal.to_string()),
        };

        RunResult {
            platform: self.id,
            end,
            outcome: self.bus.mailbox().outcome(),
            insns: self.cpu.retired(),
            cycles: self.bus.now(),
            console: String::from_utf8_lossy(self.bus.mailbox().console()).into_owned(),
            uart_tx: self.bus.uart_tx().to_vec(),
            dbg_markers,
            mmio_touched: self.bus.mmio_touched().collect(),
            decode: self.bus.decode_stats(),
        }
    }
}

impl Platform {
    /// Captures the whole machine as a versioned, byte-stable
    /// [`SaveState`]: the same machine state always snapshots to the
    /// same bytes. Configuration (derivative geometry, cost model,
    /// fault wiring) is not captured — it is re-derived by whichever
    /// constructor the blob is later applied through.
    pub fn snapshot(&self) -> SaveState {
        let mut out = Vec::new();
        out.extend_from_slice(&SAVESTATE_MAGIC);
        out.push(SAVESTATE_VERSION);
        put_u32(&mut out, self.id.code());
        out.push(fault_tag(self.fault));
        put_u64(&mut out, self.fuel);
        put_bool(&mut out, self.reset_done);
        self.cpu.save_state(&mut out);
        self.bus.save_state(&mut out);
        match &self.trace {
            Some(trace) => {
                put_bool(&mut out, true);
                trace.save_state(&mut out);
            }
            None => put_bool(&mut out, false),
        }
        SaveState::from_raw(out)
    }

    /// Rewinds this machine to a snapshot previously taken from it (or
    /// from an identically configured machine).
    ///
    /// # Errors
    ///
    /// Rejects blobs with a bad header, from a different platform
    /// ([`SaveStateError::PlatformMismatch`]) or captured under a
    /// different injected fault ([`SaveStateError::FaultMismatch`]) —
    /// use [`Platform::from_snapshot`] to re-target a fault.
    pub fn restore(&mut self, state: &SaveState) -> Result<(), SaveStateError> {
        let mut r = SaveReader::new(state.as_bytes());
        r.expect_header()?;
        if r.take_u32()? != self.id.code() {
            return Err(SaveStateError::PlatformMismatch);
        }
        if fault_from_tag(r.take_u8()?) != Some(self.fault) {
            return Err(SaveStateError::FaultMismatch);
        }
        self.apply_body(&mut r)
    }

    /// Rewinds this machine to its *pristine* snapshot — one captured
    /// right after construction, before any image was loaded or
    /// instruction run. Semantically identical to [`Platform::restore`]
    /// but the memories are reset through dirty-chunk bookkeeping
    /// instead of a full RLE decode, so the cost is proportional to
    /// what the machine actually touched since the snapshot. Pooled
    /// campaign workers use this to reset a machine between from-reset
    /// jobs faster than either a full restore or reconstruction.
    ///
    /// # Errors
    ///
    /// The same failures as [`Platform::restore`], plus
    /// [`SaveStateError::Corrupt`] when the snapshot's memory payload
    /// is not the constructor fill (i.e. it is not pristine); the
    /// machine's memories are untouched in that case, so the caller can
    /// fall back to [`Platform::restore`].
    pub fn restore_pristine(&mut self, state: &SaveState) -> Result<(), SaveStateError> {
        let mut r = SaveReader::new(state.as_bytes());
        r.expect_header()?;
        if r.take_u32()? != self.id.code() {
            return Err(SaveStateError::PlatformMismatch);
        }
        if fault_from_tag(r.take_u8()?) != Some(self.fault) {
            return Err(SaveStateError::FaultMismatch);
        }
        self.fuel = r.take_u64()?;
        self.reset_done = r.take_bool()?;
        self.cpu.apply_state(&mut r)?;
        self.bus.apply_pristine_state(&mut r)?;
        self.trace = if r.take_bool()? {
            Some(ExecTrace::from_save(&mut r)?)
        } else {
            None
        };
        r.expect_end()
    }

    /// Builds a fresh machine from a snapshot, carrying `fault` — the
    /// fork primitive. The snapshot supplies the platform identity and
    /// all dynamic state; the derivative and the (possibly different)
    /// injected fault are wired by normal construction. Campaigns use
    /// this to run a shared fault-free prefix once and branch each
    /// faulted run from it.
    ///
    /// # Errors
    ///
    /// The same header/decoding failures as [`Platform::restore`].
    pub fn from_snapshot(
        state: &SaveState,
        derivative: &Derivative,
        fault: PlatformFault,
    ) -> Result<Self, SaveStateError> {
        let mut r = SaveReader::new(state.as_bytes());
        r.expect_header()?;
        let id = platform_from_code(r.take_u32()?)
            .ok_or(SaveStateError::Corrupt("unknown platform code"))?;
        fault_from_tag(r.take_u8()?).ok_or(SaveStateError::Corrupt("unknown fault tag"))?;
        let mut platform = Platform::with_fault(id, derivative, fault);
        platform.apply_body(&mut r)?;
        Ok(platform)
    }

    /// Clones this machine's dynamic state into a new machine carrying
    /// `fault` — snapshot and [`Platform::from_snapshot`] in one step.
    pub fn fork(&self, derivative: &Derivative, fault: PlatformFault) -> Self {
        Self::from_snapshot(&self.snapshot(), derivative, fault)
            .expect("a live machine's snapshot always applies")
    }

    /// Whether forking a `fault`-carrying run from this machine's
    /// current state is provably byte-identical to running it from
    /// reset (see [`SocBus::fault_fork_safe`]).
    pub fn fork_safe(&self, fault: PlatformFault) -> bool {
        self.bus.fault_fork_safe(fault)
    }

    /// FNV digest over the architectural (timing-free) machine state:
    /// registers, RAM, NVM and externally observable peripheral state.
    /// Two platforms executing the same architectural stream digest
    /// equal at the same retired-instruction count; divergence
    /// bisection binary-searches this.
    pub fn state_digest(&self) -> u64 {
        let mut bytes = Vec::new();
        self.cpu.arch_bytes(&mut bytes);
        self.bus.arch_bytes(&mut bytes);
        fnv1a(FNV_BASIS, &bytes)
    }

    fn apply_body(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.fuel = r.take_u64()?;
        self.reset_done = r.take_bool()?;
        self.cpu.apply_state(r)?;
        self.bus.apply_state(r)?;
        self.trace = if r.take_bool()? {
            Some(ExecTrace::from_save(r)?)
        } else {
            None
        };
        r.expect_end()
    }
}

/// Convenience: assemble-load-run one image on a fresh platform.
pub fn run_image(id: PlatformId, derivative: &Derivative, image: &Image) -> RunResult {
    let mut platform = Platform::new(id, derivative);
    platform.load_image(image);
    platform.run()
}

#[cfg(test)]
mod tests {
    use advm_asm::{assemble_str, Image};

    use super::*;

    fn image(asm: &str) -> Image {
        let program = assemble_str(asm).unwrap_or_else(|e| panic!("{e}"));
        let mut image = Image::new();
        image.load_program(&program).unwrap();
        image
    }

    fn passing_test() -> Image {
        image(
            "\
_main:
    LOAD d1, #0x600D0000
    STORE [0xEFF00], d1
    STORE [0xEFF08], d1
    HALT #0
",
        )
    }

    #[test]
    fn pass_protocol_ends_run() {
        let result = run_image(
            PlatformId::GoldenModel,
            &Derivative::sc88a(),
            &passing_test(),
        );
        assert!(result.passed(), "{result}");
        assert_eq!(result.end, EndReason::SimEnd);
    }

    #[test]
    fn same_image_passes_on_all_platforms() {
        let img = passing_test();
        for id in PlatformId::ALL {
            let result = run_image(id, &Derivative::sc88a(), &img);
            assert!(result.passed(), "{result}");
        }
    }

    #[test]
    fn cycle_counts_rank_platforms() {
        let img = image(
            "\
_main:
    LOAD d1, #100
loop:
    SUB d1, d1, #1
    CMP d1, #0
    JNE loop
    HALT #0
",
        );
        let golden = run_image(PlatformId::GoldenModel, &Derivative::sc88a(), &img);
        let rtl = run_image(PlatformId::RtlSim, &Derivative::sc88a(), &img);
        let gate = run_image(PlatformId::GateSim, &Derivative::sc88a(), &img);
        assert_eq!(golden.insns, rtl.insns, "same architecture");
        assert!(rtl.cycles > golden.cycles, "RTL charges pipeline costs");
        assert!(gate.cycles > rtl.cycles, "gate level is slower still");
    }

    #[test]
    fn hung_test_runs_out_of_fuel() {
        let img = image("_main:\n    JMP _main\n");
        let mut platform = Platform::new(PlatformId::GoldenModel, &Derivative::sc88a());
        platform.set_fuel(1000);
        platform.load_image(&img);
        let result = platform.run();
        assert_eq!(result.end, EndReason::OutOfFuel);
        assert!(!result.passed());
    }

    #[test]
    fn dbg_markers_visible_only_on_debug_platforms() {
        let img = image(
            "\
_main:
    DBG #1
    DBG #2
    HALT #0
",
        );
        let golden = run_image(PlatformId::GoldenModel, &Derivative::sc88a(), &img);
        assert_eq!(golden.dbg_markers, vec![1, 2]);
        let silicon = run_image(PlatformId::ProductSilicon, &Derivative::sc88a(), &img);
        assert!(silicon.dbg_markers.is_empty(), "silicon has no debug port");
        // Architecturally identical regardless of visibility.
        assert_eq!(golden.end, silicon.end);
    }

    #[test]
    fn platform_register_identifies_platform() {
        let img = image(
            "\
_main:
    LOAD d1, [0xEFF10]
    STORE [0xEFF14], d1
    HALT #0
",
        );
        for id in PlatformId::ALL {
            let mut platform = Platform::new(id, &Derivative::sc88a());
            platform.load_image(&img);
            platform.run();
            let scratch = platform.bus().read32(0xE_FF14).unwrap();
            assert_eq!(scratch, id.code(), "{id}");
        }
    }

    #[test]
    fn injected_page_fault_fails_only_on_faulty_platform() {
        // A read-back test: select page 5, verify ACTIVE_PAGE == 5.
        let img = image(
            "\
_main:
    MOVI d14, #0
    INSERT d14, d14, #5, 0, 5
    ORI d14, d14, #0x100
    STORE [0xE0100], d14
    LOAD d1, [0xE0104]
    ANDI d1, d1, #0x1F
    CMP d1, #5
    JNE fail
    LOAD d2, #0x600D0000
    STORE [0xEFF00], d2
    STORE [0xEFF08], d2
    HALT #0
fail:
    LOAD d2, #0xBAD00001
    STORE [0xEFF00], d2
    STORE [0xEFF08], d2
    HALT #1
",
        );
        let clean = run_image(PlatformId::RtlSim, &Derivative::sc88a(), &img);
        assert!(clean.passed());

        let mut faulty = Platform::with_fault(
            PlatformId::RtlSim,
            &Derivative::sc88a(),
            PlatformFault::PageActiveOffByOne,
        );
        faulty.load_image(&img);
        let result = faulty.run();
        assert!(!result.passed(), "{result}");
    }

    #[test]
    fn trace_available_on_bondout_but_not_silicon() {
        let img = passing_test();
        let mut bondout = Platform::new(PlatformId::Bondout, &Derivative::sc88a());
        bondout.enable_trace(64);
        bondout.load_image(&img);
        bondout.run();
        let trace = bondout.trace().expect("bondout has debug visibility");
        assert!(!trace.records().is_empty());
        assert!(
            trace.disassembly().contains("MOVI"),
            "{}",
            trace.disassembly()
        );

        let mut silicon = Platform::new(PlatformId::ProductSilicon, &Derivative::sc88a());
        silicon.enable_trace(64);
        silicon.load_image(&img);
        silicon.run();
        assert!(
            silicon.trace().is_none(),
            "no logic analyser on product silicon"
        );
    }

    #[test]
    fn trace_signatures_match_across_debug_platforms() {
        // Golden model and bondout execute the same architectural stream:
        // their full-history signatures must agree (cycle counts differ).
        let img = passing_test();
        let mut signatures = Vec::new();
        for id in [PlatformId::GoldenModel, PlatformId::Bondout] {
            let mut platform = Platform::new(id, &Derivative::sc88a());
            platform.enable_trace(16);
            platform.load_image(&img);
            platform.run();
            signatures.push(platform.trace().unwrap().signature());
        }
        assert_eq!(signatures[0], signatures[1]);
    }

    #[test]
    fn pristine_rewind_restores_construction_snapshot_exactly() {
        // A workload that dirties RAM data, the stack (CALL pushes a
        // return address at STACK_TOP) and MMIO peripherals.
        let img = image(
            "\
_main:
    LOAD d1, #0xDEAD0000
    STORE [0x40100], d1
    STORE [0x5F000], d1
    CALL sub
    HALT #0
sub:
    STORE [0x40200], d1
    RETURN
",
        );
        for id in PlatformId::ALL {
            let mut machine = Platform::new(id, &Derivative::sc88a());
            let pristine = machine.snapshot();
            machine.load_image(&img);
            machine.run();
            machine.restore_pristine(&pristine).unwrap();
            assert_eq!(
                machine.snapshot().as_bytes(),
                pristine.as_bytes(),
                "{id}: dirty-chunk rewind must be byte-identical to the pristine state"
            );
        }
    }

    #[test]
    fn pristine_rewind_then_rerun_matches_fresh_machine() {
        let img = passing_test();
        let mut pooled = Platform::new(PlatformId::GoldenModel, &Derivative::sc88a());
        let pristine = pooled.snapshot();
        // Dirty the machine with a different program first.
        pooled.load_image(&image("_main:\n    STORE [0x41000], d1\n    HALT #1\n"));
        pooled.run();
        pooled.restore_pristine(&pristine).unwrap();
        pooled.load_image(&img);
        let rerun = pooled.run();

        let mut fresh = Platform::new(PlatformId::GoldenModel, &Derivative::sc88a());
        fresh.load_image(&img);
        let baseline = fresh.run();
        assert_eq!(rerun.end, baseline.end);
        assert_eq!(rerun.insns, baseline.insns);
        assert_eq!(rerun.cycles, baseline.cycles);
        assert_eq!(pooled.snapshot().as_bytes(), fresh.snapshot().as_bytes());
    }

    #[test]
    fn pristine_rewind_rejects_non_pristine_snapshots() {
        let mut machine = Platform::new(PlatformId::GoldenModel, &Derivative::sc88a());
        machine.load_image(&passing_test());
        machine.run();
        let dirty = machine.snapshot();
        assert!(matches!(
            machine.restore_pristine(&dirty),
            Err(SaveStateError::Corrupt(_))
        ));
        // The generic restore still accepts it.
        machine.restore(&dirty).unwrap();
    }

    #[test]
    fn console_output_collected() {
        let img = image(
            "\
_main:
    LOAD d1, #72
    STORE [0xEFF04], d1
    LOAD d1, #105
    STORE [0xEFF04], d1
    HALT #0
",
        );
        let result = run_image(PlatformId::GoldenModel, &Derivative::sc88a(), &img);
        assert_eq!(result.console, "Hi");
    }
}
