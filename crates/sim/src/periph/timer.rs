//! Countdown timer with optional periodic reload and interrupt request.

use crate::savestate::{put_bool, put_u32, SaveReader, SaveStateError};

/// Control register offset.
pub const CTRL: u32 = 0x00;
/// Load register offset.
pub const LOAD: u32 = 0x04;
/// Current-value register offset.
pub const VALUE: u32 = 0x08;
/// Status register offset (write 1 to clear `EXPIRED`).
pub const STATUS: u32 = 0x0C;

const CTRL_EN: u32 = 1 << 0;
const CTRL_IE: u32 = 1 << 1;
const CTRL_PERIODIC: u32 = 1 << 2;
const STATUS_EXPIRED: u32 = 1 << 0;

/// The IRQ line the timer drives on the interrupt controller.
pub const TIMER_IRQ_LINE: u8 = 0;

/// The countdown timer peripheral.
#[derive(Debug, Clone, Default)]
pub struct Timer {
    ctrl: u32,
    load: u32,
    value: u32,
    expired: bool,
    irq_edge: bool,
    /// Fault injection: the timer never expires.
    never_expires: bool,
    /// Fault injection: periodic mode fails to reload (acts one-shot).
    periodic_no_reload: bool,
    /// Fault injection: expiry never raises the interrupt edge.
    irq_suppressed: bool,
}

impl Timer {
    /// Creates a stopped timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the never-expires fault (platform fault injection).
    pub fn inject_never_expires(&mut self) {
        self.never_expires = true;
    }

    /// Enables the no-reload fault: periodic mode degrades to one-shot.
    pub fn inject_periodic_no_reload(&mut self) {
        self.periodic_no_reload = true;
    }

    /// Enables the dead-IRQ-wire fault: expiry sets `EXPIRED` but never
    /// raises the interrupt edge.
    pub fn inject_irq_suppressed(&mut self) {
        self.irq_suppressed = true;
    }

    /// Reads a register.
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset {
            CTRL => self.ctrl,
            LOAD => self.load,
            VALUE => self.value,
            STATUS if self.expired => STATUS_EXPIRED,
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset {
            CTRL => {
                let was_enabled = self.ctrl & CTRL_EN != 0;
                self.ctrl = value & 0x7;
                if !was_enabled && self.ctrl & CTRL_EN != 0 {
                    self.value = self.load;
                }
            }
            LOAD => self.load = value,
            STATUS if value & STATUS_EXPIRED != 0 => {
                self.expired = false;
            }
            _ => {}
        }
    }

    /// Advances the timer by `delta` cycles.
    pub fn tick(&mut self, delta: u64) {
        if self.ctrl & CTRL_EN == 0 || self.never_expires {
            return;
        }
        let mut remaining = delta;
        while remaining > 0 {
            let step = u64::from(self.value).min(remaining).max(1);
            if u64::from(self.value) > remaining {
                self.value -= remaining as u32;
                return;
            }
            remaining -= step;
            // Expiry.
            self.expired = true;
            if self.ctrl & CTRL_IE != 0 && !self.irq_suppressed {
                self.irq_edge = true;
            }
            if self.ctrl & CTRL_PERIODIC != 0 && self.load > 0 && !self.periodic_no_reload {
                self.value = self.load;
            } else {
                self.ctrl &= !CTRL_EN;
                self.value = 0;
                return;
            }
        }
    }

    /// Takes the pending interrupt edge, if any.
    pub fn take_irq(&mut self) -> bool {
        std::mem::take(&mut self.irq_edge)
    }

    /// Whether the timer is enabled — i.e. ticking it can change state.
    /// The bus skips peripheral ticking entirely while nothing is armed.
    pub fn armed(&self) -> bool {
        self.ctrl & CTRL_EN != 0
    }

    /// Serializes the dynamic state (fault wiring is configuration).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u32(out, self.ctrl);
        put_u32(out, self.load);
        put_u32(out, self.value);
        put_bool(out, self.expired);
        put_bool(out, self.irq_edge);
    }

    /// Restores the dynamic state.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.ctrl = r.take_u32()?;
        self.load = r.take_u32()?;
        self.value = r.take_u32()?;
        self.expired = r.take_bool()?;
        self.irq_edge = r.take_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_expires_once() {
        let mut t = Timer::new();
        t.write(LOAD, 10);
        t.write(CTRL, CTRL_EN);
        t.tick(9);
        assert_eq!(t.read(STATUS), 0);
        t.tick(1);
        assert_eq!(t.read(STATUS), STATUS_EXPIRED);
        assert_eq!(t.read(CTRL) & CTRL_EN, 0, "one-shot stops");
        assert!(!t.take_irq(), "IE was not set");
    }

    #[test]
    fn periodic_reloads_and_raises_irq() {
        let mut t = Timer::new();
        t.write(LOAD, 5);
        t.write(CTRL, CTRL_EN | CTRL_IE | CTRL_PERIODIC);
        t.tick(5);
        assert!(t.take_irq());
        assert_eq!(t.read(VALUE), 5, "reloaded");
        t.tick(5);
        assert!(t.take_irq(), "fires again");
    }

    #[test]
    fn status_write_clears_expired() {
        let mut t = Timer::new();
        t.write(LOAD, 1);
        t.write(CTRL, CTRL_EN);
        t.tick(1);
        assert_eq!(t.read(STATUS), STATUS_EXPIRED);
        t.write(STATUS, 1);
        assert_eq!(t.read(STATUS), 0);
    }

    #[test]
    fn disabled_timer_holds_value() {
        let mut t = Timer::new();
        t.write(LOAD, 10);
        t.tick(100);
        assert_eq!(t.read(STATUS), 0);
    }

    #[test]
    fn fault_never_expires() {
        let mut t = Timer::new();
        t.inject_never_expires();
        t.write(LOAD, 1);
        t.write(CTRL, CTRL_EN | CTRL_IE);
        t.tick(1000);
        assert_eq!(t.read(STATUS), 0);
        assert!(!t.take_irq());
    }

    #[test]
    fn fault_periodic_no_reload_degrades_to_one_shot() {
        let mut t = Timer::new();
        t.inject_periodic_no_reload();
        t.write(LOAD, 5);
        t.write(CTRL, CTRL_EN | CTRL_PERIODIC);
        t.tick(5);
        assert_eq!(t.read(STATUS), STATUS_EXPIRED, "first expiry happens");
        assert_eq!(t.read(CTRL) & CTRL_EN, 0, "but the timer stops");
        t.write(STATUS, 1);
        t.tick(100);
        assert_eq!(t.read(STATUS), 0, "no further expiry");
    }

    #[test]
    fn fault_irq_suppressed_sets_status_without_edge() {
        let mut t = Timer::new();
        t.inject_irq_suppressed();
        t.write(LOAD, 5);
        t.write(CTRL, CTRL_EN | CTRL_IE);
        t.tick(5);
        assert_eq!(t.read(STATUS), STATUS_EXPIRED, "status path intact");
        assert!(!t.take_irq(), "interrupt wire is dead");
    }

    #[test]
    fn large_delta_with_periodic_reload() {
        let mut t = Timer::new();
        t.write(LOAD, 3);
        t.write(CTRL, CTRL_EN | CTRL_PERIODIC);
        t.tick(10); // 3 expiries and counting
        assert_eq!(t.read(STATUS), STATUS_EXPIRED);
        assert!(t.read(VALUE) <= 3);
    }
}
