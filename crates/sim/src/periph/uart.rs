//! UART model with loopback and cycle-accurate transmit timing.

use crate::savestate::{put_bool, put_bytes, put_u32, put_u64, put_u8, SaveReader, SaveStateError};

/// UART register offsets.
pub const CTRL: u32 = 0x00;
/// Status register offset.
pub const STATUS: u32 = 0x04;
/// Data register offset.
pub const DATA: u32 = 0x08;
/// Baud divider register offset.
pub const BAUD: u32 = 0x0C;

const CTRL_EN: u32 = 1 << 0;
const CTRL_LOOPBACK: u32 = 1 << 4;
const STATUS_TX_READY: u32 = 1 << 0;
const STATUS_RX_VALID: u32 = 1 << 1;
const STATUS_OVERRUN: u32 = 1 << 2;

/// The UART peripheral.
///
/// On cycle-accurate platforms (RTL, gate level) a transmitted byte keeps
/// the transmitter busy for `8 * BAUD.DIV` cycles; functional platforms
/// transmit instantly. Software that polls `TX_READY` — as the embedded
/// software's `ES_Uart_Send_Byte` does — behaves identically on both.
#[derive(Debug, Clone)]
pub struct Uart {
    ctrl: u32,
    baud: u32,
    tx_log: Vec<u8>,
    rx_byte: Option<u8>,
    overrun: bool,
    tx_busy_until: u64,
    cycle_accurate: bool,
    /// Fault injection: drop every other transmitted byte.
    drop_bytes: bool,
    /// Fault injection: `TX_READY` never asserts.
    tx_stuck_busy: bool,
    /// Fault injection: every accepted byte transmits twice.
    duplicate_bytes: bool,
    tx_count: u64,
}

impl Uart {
    /// Creates a UART. `cycle_accurate` enables transmit busy timing.
    pub fn new(cycle_accurate: bool) -> Self {
        Self {
            ctrl: 0,
            baud: 0x10,
            tx_log: Vec::new(),
            rx_byte: None,
            overrun: false,
            tx_busy_until: 0,
            cycle_accurate,
            drop_bytes: false,
            tx_stuck_busy: false,
            duplicate_bytes: false,
            tx_count: 0,
        }
    }

    /// Enables the byte-dropping fault (platform fault injection).
    pub fn inject_drop_bytes(&mut self) {
        self.drop_bytes = true;
    }

    /// Enables the stuck-busy transmitter fault: `TX_READY` never
    /// asserts, so polling senders hang.
    pub fn inject_tx_stuck_busy(&mut self) {
        self.tx_stuck_busy = true;
    }

    /// Enables the byte-duplication fault: every accepted byte is
    /// shifted out twice (and echoes twice through loopback).
    pub fn inject_duplicate_bytes(&mut self) {
        self.duplicate_bytes = true;
    }

    /// Reads a register.
    pub fn read(&mut self, offset: u32, now: u64) -> u32 {
        match offset {
            CTRL => self.ctrl,
            STATUS => {
                let mut s = 0;
                if now >= self.tx_busy_until && !self.tx_stuck_busy {
                    s |= STATUS_TX_READY;
                }
                if self.rx_byte.is_some() {
                    s |= STATUS_RX_VALID;
                }
                if self.overrun {
                    s |= STATUS_OVERRUN;
                }
                s
            }
            DATA => {
                let b = self.rx_byte.take().unwrap_or(0);
                u32::from(b)
            }
            BAUD => self.baud,
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, offset: u32, value: u32, now: u64) {
        match offset {
            CTRL => self.ctrl = value & 0x1F,
            DATA => {
                if self.ctrl & CTRL_EN == 0 {
                    return; // transmitter disabled: write ignored
                }
                if now < self.tx_busy_until {
                    return; // busy: byte lost (software must poll TX_READY)
                }
                let byte = (value & 0xFF) as u8;
                self.tx_count += 1;
                let dropped = self.drop_bytes && self.tx_count.is_multiple_of(2);
                let copies = match (dropped, self.duplicate_bytes) {
                    (true, _) => 0,
                    (false, true) => 2, // shift register reloads: byte goes out twice
                    (false, false) => 1,
                };
                for _ in 0..copies {
                    self.tx_log.push(byte);
                    if self.ctrl & CTRL_LOOPBACK != 0 {
                        if self.rx_byte.is_some() {
                            self.overrun = true;
                        }
                        self.rx_byte = Some(byte);
                    }
                }
                if self.cycle_accurate {
                    self.tx_busy_until = now + 8 * u64::from(self.baud.max(1));
                }
            }
            BAUD => self.baud = value & 0xFFFF,
            _ => {}
        }
    }

    /// Everything transmitted so far.
    pub fn tx_log(&self) -> &[u8] {
        &self.tx_log
    }

    /// Serializes the dynamic register state (fault wiring and the
    /// `cycle_accurate` flag are configuration, re-derived on restore).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u32(out, self.ctrl);
        put_u32(out, self.baud);
        put_bytes(out, &self.tx_log);
        match self.rx_byte {
            Some(b) => {
                put_bool(out, true);
                put_u8(out, b);
            }
            None => put_bool(out, false),
        }
        put_bool(out, self.overrun);
        put_u64(out, self.tx_busy_until);
        put_u64(out, self.tx_count);
    }

    /// Restores the dynamic register state.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.ctrl = r.take_u32()?;
        self.baud = r.take_u32()?;
        self.tx_log = r.take_bytes()?.to_vec();
        self.rx_byte = if r.take_bool()? {
            Some(r.take_u8()?)
        } else {
            None
        };
        self.overrun = r.take_bool()?;
        self.tx_busy_until = r.take_u64()?;
        self.tx_count = r.take_u64()?;
        Ok(())
    }

    /// Appends architectural (timing-free) state for divergence digests.
    pub(crate) fn arch_bytes(&self, out: &mut Vec<u8>) {
        put_bytes(out, &self.tx_log);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_uart_ignores_writes() {
        let mut uart = Uart::new(false);
        uart.write(DATA, b'X'.into(), 0);
        assert!(uart.tx_log().is_empty());
    }

    #[test]
    fn enabled_uart_transmits() {
        let mut uart = Uart::new(false);
        uart.write(CTRL, CTRL_EN, 0);
        uart.write(DATA, b'H'.into(), 0);
        uart.write(DATA, b'i'.into(), 0);
        assert_eq!(uart.tx_log(), b"Hi");
    }

    #[test]
    fn functional_uart_always_ready() {
        let mut uart = Uart::new(false);
        uart.write(CTRL, CTRL_EN, 0);
        uart.write(DATA, 1, 0);
        assert_ne!(uart.read(STATUS, 0) & STATUS_TX_READY, 0);
    }

    #[test]
    fn cycle_accurate_uart_goes_busy() {
        let mut uart = Uart::new(true);
        uart.write(CTRL, CTRL_EN, 0);
        uart.write(BAUD, 4, 0);
        uart.write(DATA, 1, 100);
        assert_eq!(
            uart.read(STATUS, 100) & STATUS_TX_READY,
            0,
            "busy right after tx"
        );
        assert_ne!(
            uart.read(STATUS, 100 + 32) & STATUS_TX_READY,
            0,
            "ready after 8*div"
        );
        // A write while busy is lost.
        uart.write(DATA, 2, 101);
        assert_eq!(uart.tx_log(), &[1]);
    }

    #[test]
    fn loopback_receives_and_overruns() {
        let mut uart = Uart::new(false);
        uart.write(CTRL, CTRL_EN | CTRL_LOOPBACK, 0);
        uart.write(DATA, 0xAB, 0);
        assert_ne!(uart.read(STATUS, 0) & STATUS_RX_VALID, 0);
        uart.write(DATA, 0xCD, 0);
        assert_ne!(
            uart.read(STATUS, 0) & STATUS_OVERRUN,
            0,
            "second byte overruns"
        );
        assert_eq!(uart.read(DATA, 0), 0xCD);
        assert_eq!(uart.read(STATUS, 0) & STATUS_RX_VALID, 0, "fifo drained");
    }

    #[test]
    fn fault_injection_drops_alternate_bytes() {
        let mut uart = Uart::new(false);
        uart.inject_drop_bytes();
        uart.write(CTRL, CTRL_EN, 0);
        for b in [1u32, 2, 3, 4] {
            uart.write(DATA, b, 0);
        }
        assert_eq!(uart.tx_log(), &[1, 3]);
    }

    #[test]
    fn fault_injection_tx_stuck_busy_never_reports_ready() {
        let mut uart = Uart::new(false);
        uart.inject_tx_stuck_busy();
        uart.write(CTRL, CTRL_EN, 0);
        assert_eq!(uart.read(STATUS, 0) & STATUS_TX_READY, 0);
        assert_eq!(uart.read(STATUS, 1_000_000) & STATUS_TX_READY, 0);
    }

    #[test]
    fn fault_injection_duplicates_bytes_and_overruns_loopback() {
        let mut uart = Uart::new(false);
        uart.inject_duplicate_bytes();
        uart.write(CTRL, CTRL_EN | CTRL_LOOPBACK, 0);
        uart.write(DATA, 0x5A, 0);
        assert_eq!(uart.tx_log(), &[0x5A, 0x5A], "byte shifted out twice");
        // The duplicate overruns the single receive register even though
        // only one byte was sent — that is the observable escape hatch.
        assert_ne!(uart.read(STATUS, 0) & STATUS_OVERRUN, 0);
        assert_eq!(uart.read(DATA, 0), 0x5A, "payload still arrives");
    }
}
