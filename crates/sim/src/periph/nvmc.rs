//! NVM controller: unlock sequence, timed word writes and page erase.
//!
//! Direct stores to the NVM region are bus errors; software must use this
//! controller — which is why the embedded software exposes
//! `ES_Nvm_Unlock` / `ES_Nvm_Write_Word`, and why the abstraction layer
//! wraps them.

use crate::savestate::{put_bool, put_u32, put_u64, put_u8, SaveReader, SaveStateError};

/// Key register offset (write `0x55` then `0xAA` to unlock).
pub const KEY: u32 = 0x00;
/// Control register offset.
pub const CTRL: u32 = 0x04;
/// Target-address register offset.
pub const ADDR: u32 = 0x08;
/// Data register offset.
pub const DATA: u32 = 0x0C;
/// Status register offset.
pub const STATUS: u32 = 0x10;
/// Command register offset.
pub const CMD: u32 = 0x14;

const STATUS_BUSY: u32 = 1 << 0;
const STATUS_UNLOCKED: u32 = 1 << 1;
const STATUS_ERROR: u32 = 1 << 2;

/// Command: program one word.
pub const CMD_WRITE: u32 = 1;
/// Command: erase the 256-byte page containing `ADDR` (to `0xFF`).
pub const CMD_ERASE: u32 = 2;

/// Cycles a word program takes.
pub const WRITE_CYCLES: u64 = 10;
/// Cycles a page erase takes.
pub const ERASE_CYCLES: u64 = 100;

/// Erase page granularity in bytes.
pub const PAGE_BYTES: u32 = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyState {
    Locked,
    HalfKey,
    Unlocked,
}

/// A committed NVM operation, applied to the NVM array by the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmOp {
    /// Write `value` at the relative NVM offset `offset`.
    Write {
        /// Byte offset within the NVM region.
        offset: u32,
        /// Word value to program.
        value: u32,
    },
    /// Erase the page containing `offset`.
    Erase {
        /// Byte offset within the NVM region.
        offset: u32,
    },
}

/// The NVM controller peripheral.
#[derive(Debug, Clone)]
pub struct NvmController {
    key_state: KeyState,
    addr: u32,
    data: u32,
    error: bool,
    busy_until: u64,
    pending: Option<(u64, NvmOp)>,
    nvm_size: u32,
}

impl NvmController {
    /// Creates a locked controller for an NVM region of `nvm_size` bytes.
    pub fn new(nvm_size: u32) -> Self {
        Self {
            key_state: KeyState::Locked,
            addr: 0,
            data: 0,
            error: false,
            busy_until: 0,
            pending: None,
            nvm_size,
        }
    }

    /// Reads a register.
    pub fn read(&mut self, offset: u32, now: u64) -> u32 {
        match offset {
            ADDR => self.addr,
            DATA => self.data,
            STATUS => {
                let mut s = 0;
                if now < self.busy_until {
                    s |= STATUS_BUSY;
                }
                if self.key_state == KeyState::Unlocked {
                    s |= STATUS_UNLOCKED;
                }
                if self.error {
                    s |= STATUS_ERROR;
                }
                s
            }
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, offset: u32, value: u32, now: u64) {
        match offset {
            KEY => {
                self.key_state = match (self.key_state, value & 0xFF) {
                    (KeyState::Locked, 0x55) => KeyState::HalfKey,
                    (KeyState::HalfKey, 0xAA) => KeyState::Unlocked,
                    (KeyState::Unlocked, _) => KeyState::Unlocked,
                    _ => KeyState::Locked,
                };
            }
            ADDR => self.addr = value & 0xF_FFFF,
            DATA => self.data = value,
            CMD => self.command(value, now),
            CTRL => {}
            _ => {}
        }
    }

    fn command(&mut self, cmd: u32, now: u64) {
        if self.key_state != KeyState::Unlocked || now < self.busy_until {
            self.error = true;
            return;
        }
        if !self.addr.is_multiple_of(4) || self.addr >= self.nvm_size {
            self.error = true;
            return;
        }
        self.error = false;
        match cmd {
            CMD_WRITE => {
                self.busy_until = now + WRITE_CYCLES;
                self.pending = Some((
                    self.busy_until,
                    NvmOp::Write {
                        offset: self.addr,
                        value: self.data,
                    },
                ));
            }
            CMD_ERASE => {
                self.busy_until = now + ERASE_CYCLES;
                self.pending = Some((self.busy_until, NvmOp::Erase { offset: self.addr }));
            }
            _ => self.error = true,
        }
    }

    /// Whether a program/erase operation is in flight — i.e. advancing
    /// time must keep polling [`NvmController::take_completed`].
    pub fn op_in_flight(&self) -> bool {
        self.pending.is_some()
    }

    /// Takes the completed operation at time `now`, if one just finished.
    pub fn take_completed(&mut self, now: u64) -> Option<NvmOp> {
        match self.pending {
            Some((due, op)) if now >= due => {
                self.pending = None;
                Some(op)
            }
            _ => None,
        }
    }

    /// Serializes the dynamic state, including the in-flight operation
    /// (`nvm_size` is configuration, re-derived on restore).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u8(
            out,
            match self.key_state {
                KeyState::Locked => 0,
                KeyState::HalfKey => 1,
                KeyState::Unlocked => 2,
            },
        );
        put_u32(out, self.addr);
        put_u32(out, self.data);
        put_bool(out, self.error);
        put_u64(out, self.busy_until);
        match self.pending {
            None => put_bool(out, false),
            Some((due, op)) => {
                put_bool(out, true);
                put_u64(out, due);
                match op {
                    NvmOp::Write { offset, value } => {
                        put_u8(out, 0);
                        put_u32(out, offset);
                        put_u32(out, value);
                    }
                    NvmOp::Erase { offset } => {
                        put_u8(out, 1);
                        put_u32(out, offset);
                        put_u32(out, 0);
                    }
                }
            }
        }
    }

    /// Restores the dynamic state.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.key_state = match r.take_u8()? {
            0 => KeyState::Locked,
            1 => KeyState::HalfKey,
            2 => KeyState::Unlocked,
            _ => return Err(SaveStateError::Corrupt("NVMC key state out of range")),
        };
        self.addr = r.take_u32()?;
        self.data = r.take_u32()?;
        self.error = r.take_bool()?;
        self.busy_until = r.take_u64()?;
        self.pending = if r.take_bool()? {
            let due = r.take_u64()?;
            let tag = r.take_u8()?;
            let offset = r.take_u32()?;
            let value = r.take_u32()?;
            let op = match tag {
                0 => NvmOp::Write { offset, value },
                1 => NvmOp::Erase { offset },
                _ => return Err(SaveStateError::Corrupt("NVMC op tag out of range")),
            };
            Some((due, op))
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unlocked(now: u64) -> NvmController {
        let mut c = NvmController::new(0x1_0000);
        c.write(KEY, 0x55, now);
        c.write(KEY, 0xAA, now);
        c
    }

    #[test]
    fn unlock_sequence() {
        let mut c = NvmController::new(0x1_0000);
        assert_eq!(c.read(STATUS, 0) & STATUS_UNLOCKED, 0);
        c.write(KEY, 0x55, 0);
        c.write(KEY, 0xAA, 0);
        assert_ne!(c.read(STATUS, 0) & STATUS_UNLOCKED, 0);
    }

    #[test]
    fn wrong_key_order_relocks() {
        let mut c = NvmController::new(0x1_0000);
        c.write(KEY, 0xAA, 0);
        c.write(KEY, 0x55, 0);
        assert_eq!(c.read(STATUS, 0) & STATUS_UNLOCKED, 0);
    }

    #[test]
    fn locked_write_sets_error() {
        let mut c = NvmController::new(0x1_0000);
        c.write(ADDR, 0x100, 0);
        c.write(DATA, 42, 0);
        c.write(CMD, CMD_WRITE, 0);
        assert_ne!(c.read(STATUS, 0) & STATUS_ERROR, 0);
        assert_eq!(c.take_completed(1000), None);
    }

    #[test]
    fn write_completes_after_busy_time() {
        let mut c = unlocked(0);
        c.write(ADDR, 0x100, 0);
        c.write(DATA, 0xDEAD_BEEF, 0);
        c.write(CMD, CMD_WRITE, 0);
        assert_ne!(c.read(STATUS, 5) & STATUS_BUSY, 0);
        assert_eq!(c.take_completed(5), None, "not done yet");
        assert_eq!(
            c.take_completed(WRITE_CYCLES),
            Some(NvmOp::Write {
                offset: 0x100,
                value: 0xDEAD_BEEF
            })
        );
        assert_eq!(c.read(STATUS, WRITE_CYCLES) & STATUS_BUSY, 0);
    }

    #[test]
    fn command_while_busy_errors() {
        let mut c = unlocked(0);
        c.write(ADDR, 0x100, 0);
        c.write(CMD, CMD_WRITE, 0);
        c.write(CMD, CMD_WRITE, 1);
        assert_ne!(c.read(STATUS, 1) & STATUS_ERROR, 0);
    }

    #[test]
    fn misaligned_or_out_of_range_address_errors() {
        let mut c = unlocked(0);
        c.write(ADDR, 0x101, 0);
        c.write(CMD, CMD_WRITE, 0);
        assert_ne!(c.read(STATUS, 0) & STATUS_ERROR, 0);
        let mut c = unlocked(0);
        c.write(ADDR, 0x2_0000, 0);
        c.write(CMD, CMD_WRITE, 0);
        assert_ne!(c.read(STATUS, 0) & STATUS_ERROR, 0);
    }

    #[test]
    fn erase_schedules_page_op() {
        let mut c = unlocked(0);
        c.write(ADDR, 0x300, 0);
        c.write(CMD, CMD_ERASE, 0);
        assert_eq!(
            c.take_completed(ERASE_CYCLES),
            Some(NvmOp::Erase { offset: 0x300 })
        );
    }
}
