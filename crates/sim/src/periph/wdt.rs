//! Watchdog timer: must be serviced with the magic key or it bites.

use crate::savestate::{put_bool, put_u32, put_u64, SaveReader, SaveStateError};

/// Control register offset.
pub const CTRL: u32 = 0x00;
/// Service register offset (write the key to pet the dog).
pub const SERVICE: u32 = 0x04;
/// Period register offset.
pub const PERIOD: u32 = 0x08;

const CTRL_EN: u32 = 1 << 0;

/// The service key, published to tests as `WDT_SERVICE_KEY`.
pub const SERVICE_KEY: u32 = 0xA5;

/// The watchdog peripheral.
///
/// When enabled it counts down; writing [`SERVICE_KEY`] to `SERVICE`
/// reloads it. Expiry raises a non-maskable watchdog trap — which is why
/// slow platforms (gate-level simulation) disable it through the
/// `WDT_DISABLE` globals knob rather than pretending timing is realistic.
#[derive(Debug, Clone)]
pub struct Watchdog {
    ctrl: u32,
    period: u32,
    counter: u64,
    expired_edge: bool,
}

impl Watchdog {
    /// Default period in cycles.
    pub const DEFAULT_PERIOD: u32 = 0x1_0000;

    /// Creates a disabled watchdog.
    pub fn new() -> Self {
        Self {
            ctrl: 0,
            period: Self::DEFAULT_PERIOD,
            counter: u64::from(Self::DEFAULT_PERIOD),
            expired_edge: false,
        }
    }

    /// Reads a register.
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset {
            CTRL => self.ctrl,
            PERIOD => self.period,
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset {
            CTRL => {
                let was = self.ctrl;
                self.ctrl = value & 1;
                if was & CTRL_EN == 0 && self.ctrl & CTRL_EN != 0 {
                    self.counter = u64::from(self.period);
                }
            }
            SERVICE if value & 0xFF == SERVICE_KEY => {
                self.counter = u64::from(self.period);
            }
            PERIOD => self.period = value & 0xFF_FFFF,
            _ => {}
        }
    }

    /// Advances the watchdog; sets the expiry edge when it bites.
    pub fn tick(&mut self, delta: u64) {
        if self.ctrl & CTRL_EN == 0 {
            return;
        }
        if self.counter <= delta {
            self.expired_edge = true;
            self.counter = u64::from(self.period);
        } else {
            self.counter -= delta;
        }
    }

    /// Takes the expiry edge, if any.
    pub fn take_expiry(&mut self) -> bool {
        std::mem::take(&mut self.expired_edge)
    }

    /// Whether the watchdog is enabled — i.e. ticking it can change
    /// state. The bus skips peripheral ticking while nothing is armed.
    pub fn armed(&self) -> bool {
        self.ctrl & CTRL_EN != 0
    }

    /// Serializes the watchdog state.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u32(out, self.ctrl);
        put_u32(out, self.period);
        put_u64(out, self.counter);
        put_bool(out, self.expired_edge);
    }

    /// Restores the watchdog state.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.ctrl = r.take_u32()?;
        self.period = r.take_u32()?;
        self.counter = r.take_u64()?;
        self.expired_edge = r.take_bool()?;
        Ok(())
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_watchdog_never_bites() {
        let mut wdt = Watchdog::new();
        wdt.tick(1_000_000_000);
        assert!(!wdt.take_expiry());
    }

    #[test]
    fn unserviced_watchdog_bites() {
        let mut wdt = Watchdog::new();
        wdt.write(PERIOD, 100);
        wdt.write(CTRL, 1);
        wdt.tick(99);
        assert!(!wdt.take_expiry());
        wdt.tick(1);
        assert!(wdt.take_expiry());
    }

    #[test]
    fn serviced_watchdog_stays_quiet() {
        let mut wdt = Watchdog::new();
        wdt.write(PERIOD, 100);
        wdt.write(CTRL, 1);
        for _ in 0..10 {
            wdt.tick(60);
            wdt.write(SERVICE, SERVICE_KEY);
        }
        assert!(!wdt.take_expiry());
    }

    #[test]
    fn wrong_key_does_not_service() {
        let mut wdt = Watchdog::new();
        wdt.write(PERIOD, 100);
        wdt.write(CTRL, 1);
        wdt.tick(60);
        wdt.write(SERVICE, 0x5A);
        wdt.tick(60);
        assert!(wdt.take_expiry());
    }

    #[test]
    fn rearm_after_expiry() {
        let mut wdt = Watchdog::new();
        wdt.write(PERIOD, 10);
        wdt.write(CTRL, 1);
        wdt.tick(10);
        assert!(wdt.take_expiry());
        wdt.tick(10);
        assert!(wdt.take_expiry(), "watchdog re-arms");
    }
}
