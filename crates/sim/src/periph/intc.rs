//! Interrupt controller: 16 lines, enable mask, pending latch.

use crate::savestate::{put_u32, SaveReader, SaveStateError};

/// Enable-mask register offset.
pub const ENABLE: u32 = 0x00;
/// Pending-lines register offset.
pub const PENDING: u32 = 0x04;
/// Acknowledge register offset (write a line number to clear it).
pub const ACK: u32 = 0x08;
/// Software-raise register offset (write a line number to assert it).
pub const RAISE: u32 = 0x0C;

/// The interrupt controller.
///
/// Lines latch into `PENDING` regardless of the enable mask; the mask
/// gates which lines reach the CPU. Software acknowledges a line by
/// writing its number to `ACK`.
#[derive(Debug, Clone, Default)]
pub struct Intc {
    enable: u32,
    pending: u32,
}

impl Intc {
    /// Creates a controller with all lines masked.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register.
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset {
            ENABLE => self.enable,
            PENDING => self.pending,
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset {
            ENABLE => self.enable = value & 0xFFFF,
            ACK => {
                let line = value & 0xF;
                self.pending &= !(1 << line);
            }
            RAISE => self.raise((value & 0xF) as u8),
            _ => {}
        }
    }

    /// Asserts interrupt line `line`.
    pub fn raise(&mut self, line: u8) {
        self.pending |= 1 << u32::from(line & 0xF);
    }

    /// The lowest-numbered pending *and enabled* line, if any.
    pub fn active_line(&self) -> Option<u8> {
        let masked = self.pending & self.enable;
        if masked == 0 {
            None
        } else {
            Some(masked.trailing_zeros() as u8)
        }
    }

    /// Serializes the controller state.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u32(out, self.enable);
        put_u32(out, self.pending);
    }

    /// Restores the controller state.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.enable = r.take_u32()?;
        self.pending = r.take_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_line_latches_but_does_not_fire() {
        let mut intc = Intc::new();
        intc.raise(3);
        assert_eq!(intc.active_line(), None);
        assert_eq!(intc.read(PENDING), 1 << 3, "latched while masked");
        intc.write(ENABLE, 1 << 3);
        assert_eq!(intc.active_line(), Some(3), "fires once unmasked");
    }

    #[test]
    fn ack_clears_line() {
        let mut intc = Intc::new();
        intc.write(ENABLE, 0xFFFF);
        intc.raise(5);
        assert_eq!(intc.active_line(), Some(5));
        intc.write(ACK, 5);
        assert_eq!(intc.active_line(), None);
    }

    #[test]
    fn lowest_line_wins() {
        let mut intc = Intc::new();
        intc.write(ENABLE, 0xFFFF);
        intc.raise(7);
        intc.raise(2);
        assert_eq!(intc.active_line(), Some(2));
    }

    #[test]
    fn software_raise_register() {
        let mut intc = Intc::new();
        intc.write(ENABLE, 0xFFFF);
        intc.write(RAISE, 9);
        assert_eq!(intc.active_line(), Some(9));
    }
}
