//! SC88 peripheral models.
//!
//! Each peripheral is a small cycle-aware state machine exposing word
//! registers at fixed offsets within its module. Offsets are shared across
//! derivatives; module *base addresses* and *field geometry* come from the
//! derivative's register map, which is how a derivative that moves or
//! widens a field genuinely changes hardware behaviour here.

pub mod crc;
pub mod intc;
pub mod mailbox;
pub mod nvmc;
pub mod page;
pub mod timer;
pub mod uart;
pub mod wdt;

pub use crc::CrcUnit;
pub use intc::Intc;
pub use mailbox::MailboxDevice;
pub use nvmc::NvmController;
pub use page::PageModule;
pub use timer::Timer;
pub use uart::Uart;
pub use wdt::Watchdog;
