//! The test-bench mailbox device — the platform side of the protocol
//! declared in [`advm_soc::testbench`].

use advm_soc::testbench::{Mailbox, PlatformId, TestOutcome};

use crate::savestate::{put_bool, put_bytes, put_u32, SaveReader, SaveStateError};

/// The mailbox peripheral state.
#[derive(Debug, Clone)]
pub struct MailboxDevice {
    platform: PlatformId,
    result: Option<u32>,
    chars: Vec<u8>,
    sim_end: bool,
    scratch: u32,
    /// Fault injection: `SCRATCH` writes are dropped.
    scratch_stuck: bool,
    /// Fault injection: `TICKS` reads zero forever.
    ticks_frozen: bool,
}

impl MailboxDevice {
    /// Creates the mailbox for a platform.
    pub fn new(platform: PlatformId) -> Self {
        Self {
            platform,
            result: None,
            chars: Vec::new(),
            sim_end: false,
            scratch: 0,
            scratch_stuck: false,
            ticks_frozen: false,
        }
    }

    /// Enables the dead-scratch-write fault (platform fault injection).
    pub fn inject_scratch_stuck(&mut self) {
        self.scratch_stuck = true;
    }

    /// Enables the frozen-ticks fault (platform fault injection).
    pub fn inject_ticks_frozen(&mut self) {
        self.ticks_frozen = true;
    }

    /// Reads a register (by offset within the mailbox block).
    pub fn read(&mut self, offset: u32, now: u64) -> u32 {
        match offset {
            Mailbox::TICKS if self.ticks_frozen => 0,
            Mailbox::TICKS => now as u32,
            Mailbox::PLATFORM => self.platform.code(),
            Mailbox::SCRATCH => self.scratch,
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset {
            Mailbox::RESULT => self.result = Some(value),
            Mailbox::CHAROUT => self.chars.push((value & 0xFF) as u8),
            Mailbox::SIM_END => self.sim_end = true,
            Mailbox::SCRATCH if !self.scratch_stuck => self.scratch = value,
            _ => {}
        }
    }

    /// Whether the test asked to end the simulation.
    pub fn sim_ended(&self) -> bool {
        self.sim_end
    }

    /// The classified test outcome, if a result was reported.
    pub fn outcome(&self) -> Option<TestOutcome> {
        self.result.and_then(Mailbox::classify_result)
    }

    /// The raw result word, if any.
    pub fn raw_result(&self) -> Option<u32> {
        self.result
    }

    /// Console output accumulated through `CHAROUT`.
    pub fn console(&self) -> &[u8] {
        &self.chars
    }

    /// Serializes the dynamic state (the platform identity and fault
    /// wiring are configuration, re-derived on restore).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        match self.result {
            Some(v) => {
                put_bool(out, true);
                put_u32(out, v);
            }
            None => put_bool(out, false),
        }
        put_bytes(out, &self.chars);
        put_bool(out, self.sim_end);
        put_u32(out, self.scratch);
    }

    /// Restores the dynamic state.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.result = if r.take_bool()? {
            Some(r.take_u32()?)
        } else {
            None
        };
        self.chars = r.take_bytes()?.to_vec();
        self.sim_end = r.take_bool()?;
        self.scratch = r.take_u32()?;
        Ok(())
    }

    /// Appends architectural (timing-free) state for divergence digests.
    pub(crate) fn arch_bytes(&self, out: &mut Vec<u8>) {
        match self.result {
            Some(v) => {
                put_bool(out, true);
                put_u32(out, v);
            }
            None => put_bool(out, false),
        }
        put_bytes(out, &self.chars);
        put_bool(out, self.sim_end);
        put_u32(out, self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_protocol() {
        let mut mb = MailboxDevice::new(PlatformId::GoldenModel);
        mb.write(Mailbox::RESULT, Mailbox::PASS_MAGIC | 3);
        mb.write(Mailbox::SIM_END, 1);
        assert!(mb.sim_ended());
        assert_eq!(mb.outcome(), Some(TestOutcome::Pass { detail: 3 }));
    }

    #[test]
    fn garbage_result_classifies_none() {
        let mut mb = MailboxDevice::new(PlatformId::RtlSim);
        mb.write(Mailbox::RESULT, 0x1234_5678);
        assert_eq!(mb.outcome(), None);
        assert_eq!(mb.raw_result(), Some(0x1234_5678));
    }

    #[test]
    fn console_collects_chars() {
        let mut mb = MailboxDevice::new(PlatformId::Bondout);
        for b in b"ok" {
            mb.write(Mailbox::CHAROUT, u32::from(*b));
        }
        assert_eq!(mb.console(), b"ok");
    }

    #[test]
    fn platform_and_ticks_readable() {
        let mut mb = MailboxDevice::new(PlatformId::Accelerator);
        assert_eq!(
            mb.read(Mailbox::PLATFORM, 0),
            PlatformId::Accelerator.code()
        );
        assert_eq!(mb.read(Mailbox::TICKS, 12345), 12345);
    }

    #[test]
    fn scratch_roundtrips() {
        let mut mb = MailboxDevice::new(PlatformId::GoldenModel);
        mb.write(Mailbox::SCRATCH, 0xFEED);
        assert_eq!(mb.read(Mailbox::SCRATCH, 0), 0xFEED);
    }

    #[test]
    fn fault_scratch_stuck_drops_writes() {
        let mut mb = MailboxDevice::new(PlatformId::GoldenModel);
        mb.inject_scratch_stuck();
        mb.write(Mailbox::SCRATCH, 0xFEED);
        assert_eq!(mb.read(Mailbox::SCRATCH, 0), 0);
        // The protocol registers stay intact.
        mb.write(Mailbox::RESULT, Mailbox::PASS_MAGIC);
        assert!(mb.outcome().unwrap().passed());
    }

    #[test]
    fn fault_ticks_frozen_reads_zero() {
        let mut mb = MailboxDevice::new(PlatformId::GoldenModel);
        mb.inject_ticks_frozen();
        assert_eq!(mb.read(Mailbox::TICKS, 12345), 0);
    }
}
