//! The page-mapping module — the peripheral at the heart of the paper's
//! Figure 6 example.
//!
//! Its control register holds a `PAGE` bit-field whose *position and
//! width differ between derivatives*: SC88-B moved it up one bit, SC88-C
//! widened it from 5 to 6 bits. The peripheral is constructed from the
//! derivative's field geometry, so a test built with the wrong
//! `Globals.inc` really does program the wrong bits and really does fail.

use advm_soc::Field;

use crate::savestate::{put_u32, SaveReader, SaveStateError};

/// Control register offset.
pub const CTRL: u32 = 0x00;
/// Status register offset.
pub const STATUS: u32 = 0x04;
/// Map register offset.
pub const MAP: u32 = 0x08;
/// Window register offset: reads `selected_page << WINDOW_SHIFT` when
/// the module is enabled — a geometry-independent observable.
pub const WINDOW: u32 = 0x0C;

/// Shift applied to the selected page to form the window base.
pub const WINDOW_SHIFT: u32 = 8;

/// The page-mapping peripheral.
#[derive(Debug, Clone)]
pub struct PageModule {
    ctrl: u32,
    map: u32,
    page_field: Field,
    enable_field: Field,
    active_field: Field,
    ready_field: Field,
    /// Fault injection: report `ACTIVE_PAGE` off by one.
    active_off_by_one: bool,
    /// Fault injection: bit 0 of the written page field is stuck at zero.
    select_drops_low_bit: bool,
    /// Fault injection: `MAP` writes are dropped (dead write enable).
    map_write_ignored: bool,
}

impl PageModule {
    /// Creates the module from the derivative's field geometry.
    pub fn new(
        page_field: Field,
        enable_field: Field,
        active_field: Field,
        ready_field: Field,
    ) -> Self {
        Self {
            ctrl: 0,
            map: 0,
            page_field,
            enable_field,
            active_field,
            ready_field,
            active_off_by_one: false,
            select_drops_low_bit: false,
            map_write_ignored: false,
        }
    }

    /// Enables the off-by-one readback fault (platform fault injection).
    pub fn inject_active_off_by_one(&mut self) {
        self.active_off_by_one = true;
    }

    /// Enables the stuck-at-zero page-select bit 0 fault (write path).
    pub fn inject_select_drops_low_bit(&mut self) {
        self.select_drops_low_bit = true;
    }

    /// Enables the dead `MAP` write-enable fault.
    pub fn inject_map_write_ignored(&mut self) {
        self.map_write_ignored = true;
    }

    /// Reads a register.
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset {
            CTRL => self.ctrl,
            STATUS => {
                let mut status = self.ready_field.insert(0, 1);
                if self.enable_field.extract(self.ctrl) != 0 {
                    let mut page = self.page_field.extract(self.ctrl);
                    if self.active_off_by_one {
                        page = (page + 1) & self.active_field.value_mask();
                    }
                    status = self.active_field.insert(status, page);
                }
                status
            }
            MAP => self.map,
            WINDOW if self.enable_field.extract(self.ctrl) != 0 => {
                self.page_field.extract(self.ctrl) << WINDOW_SHIFT
            }
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset {
            CTRL => {
                let mut value = value;
                if self.select_drops_low_bit {
                    let page = self.page_field.extract(value) & !1;
                    value = self.page_field.insert(value, page);
                }
                self.ctrl = value;
            }
            MAP if !self.map_write_ignored => self.map = value & 0xFFFF,
            _ => {}
        }
    }

    /// The currently selected page (hardware view).
    pub fn selected_page(&self) -> u32 {
        self.page_field.extract(self.ctrl)
    }

    /// Serializes the dynamic register state (field geometry and fault
    /// wiring are configuration, re-derived on restore).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u32(out, self.ctrl);
        put_u32(out, self.map);
    }

    /// Restores the dynamic register state.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.ctrl = r.take_u32()?;
        self.map = r.take_u32()?;
        Ok(())
    }

    /// Appends architectural state for divergence digests.
    pub(crate) fn arch_bytes(&self, out: &mut Vec<u8>) {
        put_u32(out, self.ctrl);
        put_u32(out, self.map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc88a_page() -> PageModule {
        PageModule::new(
            Field::new("PAGE", 0, 5).unwrap(),
            Field::new("ENABLE", 8, 1).unwrap(),
            Field::new("ACTIVE_PAGE", 0, 5).unwrap(),
            Field::new("READY", 8, 1).unwrap(),
        )
    }

    fn sc88b_page() -> PageModule {
        // Field moved up one bit — the paper's spec change.
        PageModule::new(
            Field::new("PAGE", 1, 5).unwrap(),
            Field::new("ENABLE", 8, 1).unwrap(),
            Field::new("ACTIVE_PAGE", 1, 5).unwrap(),
            Field::new("READY", 8, 1).unwrap(),
        )
    }

    #[test]
    fn enabled_page_reads_back() {
        let mut page = sc88a_page();
        // PAGE=8, ENABLE=1 (what the Figure 6 test writes).
        page.write(CTRL, 8 | (1 << 8));
        let status = page.read(STATUS);
        assert_eq!(status & 0x1F, 8, "ACTIVE_PAGE");
        assert_ne!(status & (1 << 8), 0, "READY");
        assert_eq!(page.selected_page(), 8);
    }

    #[test]
    fn disabled_page_reads_zero_active() {
        let mut page = sc88a_page();
        page.write(CTRL, 8); // ENABLE clear
        assert_eq!(page.read(STATUS) & 0x1F, 0);
    }

    #[test]
    fn geometry_matters_across_derivatives() {
        // A test that writes the SC88-A bit pattern into SC88-B hardware
        // programs the wrong page: value 8 at bit 0 is page 4 at bit 1.
        let mut page = sc88b_page();
        page.write(CTRL, 8 | (1 << 8));
        assert_eq!(
            page.selected_page(),
            4,
            "stale geometry selects the wrong page"
        );
        // The correctly rebuilt test writes 8 << 1.
        page.write(CTRL, (8 << 1) | (1 << 8));
        assert_eq!(page.selected_page(), 8);
    }

    #[test]
    fn off_by_one_fault_corrupts_readback_only() {
        let mut page = sc88a_page();
        page.inject_active_off_by_one();
        page.write(CTRL, 8 | (1 << 8));
        assert_eq!(page.selected_page(), 8, "selection is correct");
        assert_eq!(page.read(STATUS) & 0x1F, 9, "readback is faulty");
    }

    #[test]
    fn select_drops_low_bit_fault_corrupts_odd_selections_only() {
        let mut page = sc88a_page();
        page.inject_select_drops_low_bit();
        page.write(CTRL, 8 | (1 << 8));
        assert_eq!(page.selected_page(), 8, "even pages unaffected");
        assert_eq!(page.read(STATUS) & 0x1F, 8, "readback agrees");
        page.write(CTRL, 7 | (1 << 8));
        assert_eq!(page.selected_page(), 6, "odd page lands one below");
        assert_eq!(
            page.read(STATUS) & 0x1F,
            6,
            "write-path bug: readback is consistent"
        );
    }

    #[test]
    fn map_write_ignored_fault_keeps_reset_value() {
        let mut page = sc88a_page();
        page.inject_map_write_ignored();
        page.write(MAP, 0x1234);
        assert_eq!(page.read(MAP), 0, "write dropped, reset value persists");
        page.write(CTRL, 8 | (1 << 8));
        assert_eq!(page.selected_page(), 8, "other registers unaffected");
    }

    #[test]
    fn window_is_geometry_independent() {
        // The same *numeric* page selected under two geometries yields
        // the same window — and a raw value interpreted differently
        // yields different windows. This is the observable that defeats
        // self-consistent hardwired tests.
        let mut a = sc88a_page();
        let mut b = sc88b_page();
        a.write(CTRL, 8 | (1 << 8)); // page 8 under A's geometry
        b.write(CTRL, (8 << 1) | (1 << 8)); // page 8 under B's geometry
        assert_eq!(a.read(WINDOW), b.read(WINDOW));
        assert_eq!(a.read(WINDOW), 8 << WINDOW_SHIFT);
        // Raw A-style value on B hardware selects page 4: wrong window.
        b.write(CTRL, 8 | (1 << 8));
        assert_eq!(b.read(WINDOW), 4 << WINDOW_SHIFT);
    }

    #[test]
    fn window_reads_zero_when_disabled() {
        let mut page = sc88a_page();
        page.write(CTRL, 8); // ENABLE clear
        assert_eq!(page.read(WINDOW), 0);
    }

    #[test]
    fn map_register_masks_to_16_bits() {
        let mut page = sc88a_page();
        page.write(MAP, 0xABCD_1234);
        assert_eq!(page.read(MAP), 0x1234);
    }
}
