//! CRC-32 acceleration unit.

use crate::savestate::{put_u32, SaveReader, SaveStateError};

/// Control register offset.
pub const CTRL: u32 = 0x00;
/// Data-input register offset.
pub const DATA_IN: u32 = 0x04;
/// Result register offset.
pub const RESULT: u32 = 0x08;

const CTRL_EN: u32 = 1 << 0;
const CTRL_INIT: u32 = 1 << 1;

/// Standard reflected CRC-32 polynomial (IEEE 802.3).
const POLY: u32 = 0xEDB8_8320;

/// The CRC accelerator peripheral.
///
/// Words written to `DATA_IN` are folded into the accumulator byte-wise
/// (little-endian, matching memory order); `RESULT` reads the final
/// (inverted) CRC-32.
#[derive(Debug, Clone)]
pub struct CrcUnit {
    ctrl: u32,
    acc: u32,
}

impl CrcUnit {
    /// Creates a unit with the accumulator initialised.
    pub fn new() -> Self {
        Self {
            ctrl: 0,
            acc: 0xFFFF_FFFF,
        }
    }

    /// Reads a register.
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset {
            CTRL => self.ctrl,
            RESULT => !self.acc,
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset {
            CTRL => {
                self.ctrl = value & CTRL_EN;
                if value & CTRL_INIT != 0 {
                    self.acc = 0xFFFF_FFFF;
                }
            }
            DATA_IN if self.ctrl & CTRL_EN != 0 => {
                for byte in value.to_le_bytes() {
                    self.acc = step(self.acc, byte);
                }
            }
            _ => {}
        }
    }

    /// Serializes the unit state.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        put_u32(out, self.ctrl);
        put_u32(out, self.acc);
    }

    /// Restores the unit state.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        self.ctrl = r.take_u32()?;
        self.acc = r.take_u32()?;
        Ok(())
    }
}

impl Default for CrcUnit {
    fn default() -> Self {
        Self::new()
    }
}

fn step(mut acc: u32, byte: u8) -> u32 {
    acc ^= u32::from(byte);
    for _ in 0..8 {
        if acc & 1 != 0 {
            acc = (acc >> 1) ^ POLY;
        } else {
            acc >>= 1;
        }
    }
    acc
}

/// Reference software CRC-32 over a byte slice (used by tests and the
/// golden model's self-checks).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut acc = 0xFFFF_FFFFu32;
    for &b in bytes {
        acc = step(acc, b);
    }
    !acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-32("123456789") = 0xCBF43926 — the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn unit_matches_software_crc() {
        let mut unit = CrcUnit::new();
        unit.write(CTRL, CTRL_EN | CTRL_INIT);
        unit.write(DATA_IN, u32::from_le_bytes(*b"1234"));
        unit.write(DATA_IN, u32::from_le_bytes(*b"5678"));
        assert_eq!(unit.read(RESULT), crc32(b"12345678"));
    }

    #[test]
    fn disabled_unit_ignores_data() {
        let mut unit = CrcUnit::new();
        let before = unit.read(RESULT);
        unit.write(DATA_IN, 0x1234_5678);
        assert_eq!(unit.read(RESULT), before);
    }

    #[test]
    fn init_resets_accumulator() {
        let mut unit = CrcUnit::new();
        unit.write(CTRL, CTRL_EN);
        unit.write(DATA_IN, 42);
        unit.write(CTRL, CTRL_EN | CTRL_INIT);
        assert_eq!(unit.read(RESULT), crc32(b""));
    }

    #[test]
    fn empty_crc_is_zero() {
        assert_eq!(crc32(b""), 0);
    }
}
