//! Platform fault injection — the catalog the suite-strength audit sweeps.
//!
//! The methodology's cross-platform claim is only testable if platforms
//! can *disagree*: a design bug that exists in the RTL but not in the
//! golden model must show up as a cross-platform divergence caught by the
//! shared test suite. These injectable faults model such bugs.
//!
//! Each variant models one concrete hardware defect class (stuck bits,
//! dropped writes, dead interrupt wiring, decoder skew, bus wait-states).
//! [`crate::bus::SocBus::new`] wires the selected fault into exactly one
//! peripheral or bus path, leaving the no-fault path untouched; the
//! `FaultAudit` driver in the methodology engine sweeps the whole catalog
//! across platforms and classifies which faults the suite detects.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A hardware bug injectable into one platform's peripheral models.
///
/// Variants are grouped by fault site; the doc comment of each variant
/// names the real-world defect it stands in for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformFault {
    /// No fault: the platform implements the specification.
    #[default]
    None,

    // ---- page module ---------------------------------------------------
    /// The page module reports `ACTIVE_PAGE` one higher than selected —
    /// a classic *read-path* bug (status mux off by one) that only a
    /// read-back test catches.
    PageActiveOffByOne,
    /// Bit 0 of the `PAGE` control field is stuck at zero on the *write*
    /// path: odd page selections silently land on the even page below
    /// (a tied-low data line into the control register).
    PageSelectDropsLowBit,
    /// Writes to the `PAGE_MAP` register are ignored — the register
    /// reads back its reset value forever (a dead write-enable strobe).
    /// Reset-value tests pass over it; only a write/read-back sweep of
    /// the register catches it.
    PageMapWriteIgnored,

    // ---- UART ----------------------------------------------------------
    /// The UART silently drops every second transmitted byte (transmit
    /// FIFO pointer bug).
    UartDropsBytes,
    /// `STATUS.TX_READY` never asserts — the framing state machine is
    /// stuck busy, so correctly written software that polls before
    /// sending hangs forever.
    UartTxStuckBusy,
    /// Every accepted byte is transmitted *twice* (shift-register reload
    /// bug). The payload still arrives, so echo tests pass; the
    /// duplicate shows up only as a spurious receive `OVERRUN`.
    UartDuplicatesBytes,

    // ---- timer ---------------------------------------------------------
    /// The timer never expires (clock-gating bug).
    TimerNeverExpires,
    /// Periodic mode fails to reload: the timer behaves as one-shot
    /// (reload mux wired to the mode bit's complement).
    TimerPeriodicNoReload,
    /// Expiry sets the `EXPIRED` status flag but the interrupt edge is
    /// never raised (dead wire between timer and interrupt controller).
    TimerIrqSuppressed,

    // ---- test-bench mailbox ---------------------------------------------
    /// Writes to the mailbox `SCRATCH` register are dropped; it reads
    /// zero forever (write-enable stuck inactive).
    MailboxScratchStuck,
    /// The mailbox `TICKS` counter reads zero forever (counter clock
    /// gated off), so time appears to stand still.
    MailboxTicksFrozen,

    // ---- ES ROM / bus --------------------------------------------------
    /// Instruction fetches from the embedded-software ROM *jump table*
    /// return the next slot's word (address decoder off by one row):
    /// every ES entry point dispatches to the wrong routine.
    EsDispatchSkewed,
    /// Every MMIO access inserts extra bus wait-states (a misprogrammed
    /// bus bridge). Functionally invisible to polling software — only a
    /// test that *measures* relative bus timing catches it.
    BusExtraWaitStates,
}

/// Extra cycles [`PlatformFault::BusExtraWaitStates`] charges per MMIO
/// access.
pub const BUS_WAIT_STATE_CYCLES: u64 = 8;

impl PlatformFault {
    /// All injectable faults (excluding `None`), in catalog order.
    pub const ALL: [PlatformFault; 13] = [
        PlatformFault::PageActiveOffByOne,
        PlatformFault::PageSelectDropsLowBit,
        PlatformFault::PageMapWriteIgnored,
        PlatformFault::UartDropsBytes,
        PlatformFault::UartTxStuckBusy,
        PlatformFault::UartDuplicatesBytes,
        PlatformFault::TimerNeverExpires,
        PlatformFault::TimerPeriodicNoReload,
        PlatformFault::TimerIrqSuppressed,
        PlatformFault::MailboxScratchStuck,
        PlatformFault::MailboxTicksFrozen,
        PlatformFault::EsDispatchSkewed,
        PlatformFault::BusExtraWaitStates,
    ];

    /// The register-map module whose stimulus exercises this fault site.
    ///
    /// The suite-strength audit feeds the modules of *escaped* faults
    /// into the scenario engine's weak-module feedback, so generation
    /// can aim stimulus at the surviving faults. `None` maps to no
    /// module.
    pub fn module(self) -> Option<&'static str> {
        match self {
            PlatformFault::None => None,
            PlatformFault::PageActiveOffByOne
            | PlatformFault::PageSelectDropsLowBit
            | PlatformFault::PageMapWriteIgnored => Some("PAGE"),
            PlatformFault::UartDropsBytes
            | PlatformFault::UartTxStuckBusy
            | PlatformFault::UartDuplicatesBytes => Some("UART"),
            PlatformFault::TimerNeverExpires
            | PlatformFault::TimerPeriodicNoReload
            | PlatformFault::TimerIrqSuppressed => Some("TIMER"),
            // The mailbox and the bus have no dedicated stimulus preset of
            // their own; the testbench (`TB`) cells exercise both.
            PlatformFault::MailboxScratchStuck
            | PlatformFault::MailboxTicksFrozen
            | PlatformFault::BusExtraWaitStates => Some("TB"),
            PlatformFault::EsDispatchSkewed => Some("ES"),
        }
    }

    /// Parses the stable kebab-case name rendered by `Display`.
    pub fn parse(text: &str) -> Option<Self> {
        std::iter::once(PlatformFault::None)
            .chain(PlatformFault::ALL)
            .find(|f| f.to_string() == text)
    }
}

impl fmt::Display for PlatformFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlatformFault::None => "none",
            PlatformFault::PageActiveOffByOne => "page-active-off-by-one",
            PlatformFault::PageSelectDropsLowBit => "page-select-drops-low-bit",
            PlatformFault::PageMapWriteIgnored => "page-map-write-ignored",
            PlatformFault::UartDropsBytes => "uart-drops-bytes",
            PlatformFault::UartTxStuckBusy => "uart-tx-stuck-busy",
            PlatformFault::UartDuplicatesBytes => "uart-duplicates-bytes",
            PlatformFault::TimerNeverExpires => "timer-never-expires",
            PlatformFault::TimerPeriodicNoReload => "timer-periodic-no-reload",
            PlatformFault::TimerIrqSuppressed => "timer-irq-suppressed",
            PlatformFault::MailboxScratchStuck => "mailbox-scratch-stuck",
            PlatformFault::MailboxTicksFrozen => "mailbox-ticks-frozen",
            PlatformFault::EsDispatchSkewed => "es-dispatch-skewed",
            PlatformFault::BusExtraWaitStates => "bus-extra-wait-states",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert_eq!(PlatformFault::default(), PlatformFault::None);
    }

    #[test]
    fn all_excludes_none() {
        assert!(!PlatformFault::ALL.contains(&PlatformFault::None));
        assert!(PlatformFault::ALL.len() >= 10, "catalog must stay ≥ 10");
    }

    #[test]
    fn names_are_unique_and_parse_roundtrips() {
        let mut seen = std::collections::HashSet::new();
        for fault in std::iter::once(PlatformFault::None).chain(PlatformFault::ALL) {
            let name = fault.to_string();
            assert!(seen.insert(name.clone()), "duplicate name {name}");
            assert_eq!(PlatformFault::parse(&name), Some(fault));
        }
        assert_eq!(PlatformFault::parse("bogus"), None);
    }

    #[test]
    fn every_fault_names_a_stimulus_module() {
        assert_eq!(PlatformFault::None.module(), None);
        for fault in PlatformFault::ALL {
            assert!(fault.module().is_some(), "{fault} has no module");
        }
    }
}
