//! Platform fault injection.
//!
//! The methodology's cross-platform claim is only testable if platforms
//! can *disagree*: a design bug that exists in the RTL but not in the
//! golden model must show up as a cross-platform divergence caught by the
//! shared test suite. These injectable faults model such bugs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A hardware bug injectable into one platform's peripheral models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformFault {
    /// No fault: the platform implements the specification.
    #[default]
    None,
    /// The page module reports `ACTIVE_PAGE` one higher than selected
    /// (a classic read-path bug that only a read-back test catches).
    PageActiveOffByOne,
    /// The UART silently drops every second transmitted byte.
    UartDropsBytes,
    /// The timer never expires (clock-gating bug).
    TimerNeverExpires,
}

impl PlatformFault {
    /// All injectable faults (excluding `None`).
    pub const ALL: [PlatformFault; 3] = [
        PlatformFault::PageActiveOffByOne,
        PlatformFault::UartDropsBytes,
        PlatformFault::TimerNeverExpires,
    ];
}

impl fmt::Display for PlatformFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlatformFault::None => "none",
            PlatformFault::PageActiveOffByOne => "page-active-off-by-one",
            PlatformFault::UartDropsBytes => "uart-drops-bytes",
            PlatformFault::TimerNeverExpires => "timer-never-expires",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert_eq!(PlatformFault::default(), PlatformFault::None);
    }

    #[test]
    fn all_excludes_none() {
        assert!(!PlatformFault::ALL.contains(&PlatformFault::None));
        assert_eq!(PlatformFault::ALL.len(), 3);
    }
}
