//! The SC88 execution core.
//!
//! One core drives every platform; platforms differ in cycle cost
//! modelling, debug visibility and peripheral fault injection, not in
//! architectural semantics — matching the paper's premise that the same
//! test code runs everywhere.

use advm_isa::{vector_entry_addr, AddrReg, BitSrc, DataReg, Insn, Psw, TrapKind, RESET_PC};
use advm_soc::memmap::STACK_TOP;

use crate::bus::{BusFault, SocBus};
use crate::savestate::{put_u32, put_u64, SaveReader, SaveStateError};
use crate::trace::ExecTrace;

/// Per-instruction cycle costs. Functional platforms use all-ones;
/// cycle-accurate platforms charge extra for memory, multiply and taken
/// control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of any instruction.
    pub base: u32,
    /// Extra cost of a memory access.
    pub mem: u32,
    /// Extra cost of a multiply.
    pub mul: u32,
    /// Extra cost of taken control flow.
    pub branch: u32,
    /// Global multiplier (gate-level simulation charges double).
    pub scale: u32,
}

impl CostModel {
    /// One cycle per instruction (golden model, accelerator, silicon).
    pub fn functional() -> Self {
        Self {
            base: 1,
            mem: 0,
            mul: 0,
            branch: 0,
            scale: 1,
        }
    }

    /// RTL-like pipeline costs.
    pub fn rtl() -> Self {
        Self {
            base: 1,
            mem: 1,
            mul: 3,
            branch: 2,
            scale: 1,
        }
    }

    /// Gate-level: RTL costs at half clock (doubled cycles).
    pub fn gate() -> Self {
        Self {
            base: 1,
            mem: 1,
            mul: 3,
            branch: 2,
            scale: 2,
        }
    }

    fn cost(&self, insn: &Insn, taken: bool) -> u32 {
        let mut c = self.base;
        if insn.touches_memory() {
            c += self.mem;
        }
        if matches!(insn, Insn::Mul { .. }) {
            c += self.mul;
        }
        if taken && insn.is_control_flow() {
            c += self.branch;
        }
        c * self.scale
    }
}

/// A non-recoverable execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FatalError {
    /// A trap fired but its vector-table entry is zero.
    UnhandledTrap {
        /// The trap cause.
        kind: TrapKind,
        /// PC at the time of the trap.
        at: u32,
    },
    /// A fault occurred while entering a trap handler (e.g. the stack
    /// pointer is pointing at ROM).
    DoubleFault {
        /// PC at the time of the second fault.
        at: u32,
    },
}

impl std::fmt::Display for FatalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FatalError::UnhandledTrap { kind, at } => {
                write!(f, "unhandled {kind} at pc {at:#07x}")
            }
            FatalError::DoubleFault { at } => write!(f, "double fault at pc {at:#07x}"),
        }
    }
}

/// The result of one [`Cpu::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired.
    Executed {
        /// Cycles consumed.
        cycles: u32,
        /// `DBG` marker tag, if the instruction was a debug marker.
        dbg: Option<u8>,
    },
    /// A `HALT` instruction retired; the platform stops.
    Halted {
        /// The halt code.
        code: u8,
    },
    /// Execution cannot continue.
    Fatal(FatalError),
}

/// Why a batched [`Cpu::run`] call returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchExit {
    /// The test-bench mailbox's `SIM_END` register was written.
    SimEnd,
    /// A `HALT` instruction retired.
    Halted {
        /// The halt code.
        code: u8,
    },
    /// Execution hit a fatal condition (unhandled trap, double fault).
    Fatal(FatalError),
    /// The instruction budget was exhausted.
    OutOfFuel,
}

/// The SC88 CPU state.
#[derive(Debug, Clone)]
pub struct Cpu {
    d: [u32; 16],
    a: [u32; 16],
    pc: u32,
    psw: Psw,
    retired: u64,
}

impl Cpu {
    /// A CPU in the architectural reset state: `PC = RESET_PC`, the stack
    /// pointer (`a10`) at the top of RAM, interrupts disabled.
    pub fn new() -> Self {
        let mut cpu = Self {
            d: [0; 16],
            a: [0; 16],
            pc: RESET_PC,
            psw: Psw::new(),
            retired: 0,
        };
        cpu.a[AddrReg::SP.index() as usize] = STACK_TOP;
        cpu
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The status word.
    pub fn psw(&self) -> Psw {
        self.psw
    }

    /// Reads a data register.
    pub fn d(&self, reg: DataReg) -> u32 {
        self.d[reg.index() as usize]
    }

    /// Reads an address register.
    pub fn a(&self, reg: AddrReg) -> u32 {
        self.a[reg.index() as usize]
    }

    /// Writes a data register (used by bondout-style debug injection).
    pub fn set_d(&mut self, reg: DataReg, value: u32) {
        self.d[reg.index() as usize] = value;
    }

    /// Writes an address register.
    pub fn set_a(&mut self, reg: AddrReg, value: u32) {
        self.a[reg.index() as usize] = value;
    }

    /// Instructions retired since reset.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Serializes the full register state (snapshot body).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        for v in self.d {
            put_u32(out, v);
        }
        for v in self.a {
            put_u32(out, v);
        }
        put_u32(out, self.pc);
        put_u32(out, self.psw.bits());
        put_u64(out, self.retired);
    }

    /// Restores register state from a snapshot body.
    pub(crate) fn apply_state(&mut self, r: &mut SaveReader<'_>) -> Result<(), SaveStateError> {
        for v in &mut self.d {
            *v = r.take_u32()?;
        }
        for v in &mut self.a {
            *v = r.take_u32()?;
        }
        self.pc = r.take_u32()?;
        self.psw = Psw::from_bits(r.take_u32()?);
        self.retired = r.take_u64()?;
        Ok(())
    }

    /// Appends the architectural (timing-free) register state for
    /// divergence digests.
    pub(crate) fn arch_bytes(&self, out: &mut Vec<u8>) {
        for v in self.d {
            put_u32(out, v);
        }
        for v in self.a {
            put_u32(out, v);
        }
        put_u32(out, self.pc);
        put_u32(out, self.psw.bits());
        put_u64(out, self.retired);
    }

    /// Executes one instruction (or takes one pending trap/interrupt).
    pub fn step(&mut self, bus: &mut SocBus, cost: &CostModel) -> StepOutcome {
        // Asynchronous causes first: watchdog (non-maskable), then IRQs.
        // The bus maintains a single hoisted attention flag, so the
        // no-async common case costs one predictable branch.
        if bus.async_pending() {
            if let Some(outcome) = self.take_async(bus, cost) {
                return outcome;
            }
        }

        let (_, insn) = match bus.fetch_decoded(self.pc) {
            Ok(fetched) => fetched,
            Err(fault) => return self.fault_to_trap(bus, fault),
        };
        let Some(insn) = insn else {
            return match self.enter_trap(bus, TrapKind::IllegalInsn, self.pc + 4) {
                Ok(()) => StepOutcome::Executed {
                    cycles: cost.base * cost.scale,
                    dbg: None,
                },
                Err(fatal) => StepOutcome::Fatal(fatal),
            };
        };
        self.exec(bus, cost, insn)
    }

    /// Takes one pending asynchronous cause, if any: watchdog bite
    /// (non-maskable) first, then the lowest pending enabled IRQ.
    fn take_async(&mut self, bus: &mut SocBus, cost: &CostModel) -> Option<StepOutcome> {
        if bus.take_watchdog_bite() {
            return Some(match self.enter_trap(bus, TrapKind::Watchdog, self.pc) {
                Ok(()) => StepOutcome::Executed {
                    cycles: cost.base * cost.scale,
                    dbg: None,
                },
                Err(fatal) => StepOutcome::Fatal(fatal),
            });
        }
        if self.psw.interrupts_enabled() {
            if let Some(line) = bus.pending_irq() {
                return Some(match self.enter_trap(bus, TrapKind::Irq(line), self.pc) {
                    Ok(()) => StepOutcome::Executed {
                        cycles: cost.base * cost.scale,
                        dbg: None,
                    },
                    Err(fatal) => StepOutcome::Fatal(fatal),
                });
            }
        }
        None
    }

    /// Runs until the mailbox ends the simulation, a `HALT` retires, a
    /// fatal condition hits, or `fuel` further instructions have retired
    /// — the batched alternative to calling [`Cpu::step`] in a loop,
    /// with the end-of-run and asynchronous-cause checks hoisted to one
    /// cheap test each per instruction, and to one test *per superblock*
    /// on the straight-line fast path.
    ///
    /// `fuel == 0` returns [`BatchExit::OutOfFuel`] immediately without
    /// retiring anything, and the budget is tracked as a countdown, so
    /// it is exact even when the retired counter sits near `u64::MAX`.
    ///
    /// Time advances by each retired instruction's cycle cost, exactly
    /// as the per-step loop does.
    pub fn run(&mut self, bus: &mut SocBus, cost: &CostModel, fuel: u64) -> BatchExit {
        self.run_observed(bus, cost, fuel, None, None)
    }

    /// [`Cpu::run`] with observation hooks: `trace` records each retired
    /// `(pc, word)` (exactly as the legacy per-step driver did), `dbg`
    /// collects `DBG` marker tags.
    ///
    /// With no trace armed, straight-line runs of bus-free instructions
    /// dispatch as whole superblocks: the sim-end/fuel/async/timing
    /// checks move to block boundaries, and time advances once per block
    /// by the summed cycle cost. Nothing inside a block can touch the
    /// bus, so the architectural stream — including every MMIO
    /// timestamp — is identical to per-instruction stepping; a fuel
    /// budget smaller than the block clamps the dispatch, never
    /// overshooting mid-block. Tracing, pending asynchronous causes and
    /// active timing all fall back to the per-word path, where each
    /// instruction is observed individually.
    pub fn run_observed(
        &mut self,
        bus: &mut SocBus,
        cost: &CostModel,
        fuel: u64,
        mut trace: Option<&mut ExecTrace>,
        mut dbg: Option<&mut Vec<u8>>,
    ) -> BatchExit {
        // A countdown, not a `retired + fuel` limit: the additive limit
        // saturates near `u64::MAX` and spins forever.
        let mut left = fuel;
        // Hoisted: tracing and the tier switch are fixed for the whole
        // call (runtime configuration, never toggled mid-run), so the
        // per-instruction modes skip the block branch entirely.
        let blocks_ok = trace.is_none() && bus.superblocks_enabled();
        // One-entry dispatch cache: hot loops re-enter the same block
        // back to back, so the map lookup and `Arc` clone inside
        // `superblock_at` are paid once per (pc, invalidation epoch),
        // not once per dispatch. The generation check keeps a cached
        // block from surviving any invalidation, including an NVM
        // commit inside `advance`.
        let mut cached: Option<std::sync::Arc<crate::decoded::Superblock>> = None;
        let mut cached_pc = 0u32;
        let mut cached_gen = 0u64;
        loop {
            if bus.mailbox().sim_ended() {
                return BatchExit::SimEnd;
            }
            if left == 0 {
                return BatchExit::OutOfFuel;
            }
            if blocks_ok && !bus.async_pending() && !bus.timing_active() {
                let generation = bus.decode_generation();
                if cached.is_none() || cached_pc != self.pc || cached_gen != generation {
                    cached = bus.superblock_at(self.pc);
                    cached_pc = self.pc;
                    cached_gen = generation;
                }
                if let Some(block) = &cached {
                    let n = (block.len() as u64).min(left) as usize;
                    let (retired, cycles) = self.exec_block(&block.insns()[..n], cost, &mut dbg);
                    debug_assert!(
                        retired <= left,
                        "superblock dispatch overshot the fuel budget"
                    );
                    if retired > 0 {
                        left = left.saturating_sub(retired);
                        bus.advance(cycles);
                        bus.note_block_dispatch(retired);
                        continue;
                    }
                    // Defensive: the block's first instruction is not
                    // pure-executable (classifier drift). Fall through
                    // to the per-instruction path, which executes it
                    // correctly.
                }
            }
            if let Some(trace) = trace.as_deref_mut() {
                if let Ok(word) = bus.read32(self.pc) {
                    trace.record(self.pc, word);
                }
            }
            let before = self.retired;
            match self.step(bus, cost) {
                StepOutcome::Executed {
                    cycles,
                    dbg: marker,
                } => {
                    bus.advance(u64::from(cycles));
                    if let (Some(tag), Some(sink)) = (marker, dbg.as_deref_mut()) {
                        sink.push(tag);
                    }
                    // Trap/interrupt entries retire nothing and consume
                    // no fuel, exactly as the additive limit behaved.
                    left = left.saturating_sub(self.retired.wrapping_sub(before));
                }
                StepOutcome::Halted { code } => return BatchExit::Halted { code },
                StepOutcome::Fatal(fatal) => return BatchExit::Fatal(fatal),
            }
        }
    }

    /// Executes one bus-free instruction: pure register/PSW writes that
    /// never read the pc, touch the bus, trap, or retire specially.
    /// This is every block-eligible instruction except `DBG` (which
    /// carries a marker the caller must route). The pc/retired update
    /// is the caller's — [`Cpu::exec`] retires one, [`Cpu::exec_block`]
    /// batches a whole block. Returns `Some(is_mul)` when handled
    /// (`is_mul` selects the block executor's cycle class), `None`
    /// otherwise.
    #[inline(always)]
    fn exec_pure(&mut self, insn: &Insn) -> Option<bool> {
        match *insn {
            Insn::Nop => {}
            Insn::MovI { rd, imm } => self.d[rd.index() as usize] = u32::from(imm),
            Insn::MovHi { rd, imm } => {
                let r = &mut self.d[rd.index() as usize];
                *r = (u32::from(imm) << 16) | (*r & 0xFFFF);
            }
            Insn::Mov { rd, ra } => self.d[rd.index() as usize] = self.d(ra),
            Insn::MovDa { rd, ab } => self.d[rd.index() as usize] = self.a(ab),
            Insn::MovAd { ad, rb } => self.a[ad.index() as usize] = self.d(rb),
            Insn::MovAa { ad, ab } => self.a[ad.index() as usize] = self.a(ab),
            Insn::Lea { ad, addr } => self.a[ad.index() as usize] = addr,
            Insn::Add { rd, ra, rb } => {
                let (r, c) = self.d(ra).overflowing_add(self.d(rb));
                let v = (self.d(ra) as i32).overflowing_add(self.d(rb) as i32).1;
                self.set_arith(rd, r, c, v);
            }
            Insn::AddI { rd, ra, imm } => {
                let b = i32::from(imm) as u32;
                let (r, c) = self.d(ra).overflowing_add(b);
                let v = (self.d(ra) as i32).overflowing_add(i32::from(imm)).1;
                self.set_arith(rd, r, c, v);
            }
            Insn::Sub { rd, ra, rb } => {
                let (r, c) = self.d(ra).overflowing_sub(self.d(rb));
                let v = (self.d(ra) as i32).overflowing_sub(self.d(rb) as i32).1;
                self.set_arith(rd, r, c, v);
            }
            Insn::Mul { rd, ra, rb } => {
                let r = self.d(ra).wrapping_mul(self.d(rb));
                self.set_logic(rd, r);
                return Some(true);
            }
            Insn::And { rd, ra, rb } => {
                let r = self.d(ra) & self.d(rb);
                self.set_logic(rd, r);
            }
            Insn::AndI { rd, ra, imm } => {
                let r = self.d(ra) & u32::from(imm);
                self.set_logic(rd, r);
            }
            Insn::Or { rd, ra, rb } => {
                let r = self.d(ra) | self.d(rb);
                self.set_logic(rd, r);
            }
            Insn::OrI { rd, ra, imm } => {
                let r = self.d(ra) | u32::from(imm);
                self.set_logic(rd, r);
            }
            Insn::Xor { rd, ra, rb } => {
                let r = self.d(ra) ^ self.d(rb);
                self.set_logic(rd, r);
            }
            Insn::XorI { rd, ra, imm } => {
                let r = self.d(ra) ^ u32::from(imm);
                self.set_logic(rd, r);
            }
            Insn::Shl { rd, ra, rb } => {
                let r = self.d(ra).wrapping_shl(self.d(rb) & 31);
                self.set_logic(rd, r);
            }
            Insn::ShlI { rd, ra, sh } => {
                let r = self.d(ra).wrapping_shl(u32::from(sh));
                self.set_logic(rd, r);
            }
            Insn::Shr { rd, ra, rb } => {
                let r = self.d(ra).wrapping_shr(self.d(rb) & 31);
                self.set_logic(rd, r);
            }
            Insn::ShrI { rd, ra, sh } => {
                let r = self.d(ra).wrapping_shr(u32::from(sh));
                self.set_logic(rd, r);
            }
            Insn::SarI { rd, ra, sh } => {
                let r = ((self.d(ra) as i32) >> sh) as u32;
                self.set_logic(rd, r);
            }
            Insn::Not { rd, ra } => {
                let r = !self.d(ra);
                self.set_logic(rd, r);
            }
            Insn::Neg { rd, ra } => {
                let (r, c) = 0u32.overflowing_sub(self.d(ra));
                let v = 0i32.overflowing_sub(self.d(ra) as i32).1;
                self.set_arith(rd, r, c, v);
            }
            Insn::Cmp { ra, rb } => self.psw.set_compare(self.d(ra), self.d(rb)),
            Insn::CmpI { ra, imm } => self.psw.set_compare(self.d(ra), i32::from(imm) as u32),
            Insn::Insert {
                rd,
                ra,
                src,
                pos,
                width,
            } => {
                let value = match src {
                    BitSrc::Reg(r) => self.d(r),
                    BitSrc::Imm(v) => u32::from(v),
                };
                let mask = if width == 32 {
                    u32::MAX
                } else {
                    (1u32 << width) - 1
                };
                let r = (self.d(ra) & !(mask << pos)) | ((value & mask) << pos);
                self.set_logic(rd, r);
            }
            Insn::Extract { rd, ra, pos, width } => {
                let mask = if width == 32 {
                    u32::MAX
                } else {
                    (1u32 << width) - 1
                };
                let r = (self.d(ra) >> pos) & mask;
                self.set_logic(rd, r);
            }
            Insn::Ei => self.psw.set_interrupts_enabled(true),
            Insn::Di => self.psw.set_interrupts_enabled(false),
            Insn::AddA { ad, imm } => {
                let r = self.a(ad).wrapping_add_signed(i32::from(imm));
                self.a[ad.index() as usize] = r;
            }
            _ => return None,
        }
        Some(false)
    }

    /// Executes up to `insns.len()` leading instructions of a
    /// superblock in a tight bus-free loop: one batched pc/retired
    /// update, O(1)-per-instruction cycle accounting (pure instructions
    /// cost `base`, multiplies `base + mul`, the trailing branch adds
    /// `branch` when taken — all scaled, exactly [`CostModel::cost`]
    /// restricted to bus-free instructions), and `DBG` tags pushed
    /// straight into the sink. The caller clamps `insns` to the fuel
    /// budget, so the dispatch can never overshoot. Stops after a
    /// terminator, and stops *before* any instruction the pure path
    /// cannot execute — the defensive exit for classifier drift: the
    /// per-instruction path picks that instruction up, so nothing is
    /// lost or double-executed. Returns `(retired, cycles)`.
    fn exec_block(
        &mut self,
        insns: &[Insn],
        cost: &CostModel,
        dbg: &mut Option<&mut Vec<u8>>,
    ) -> (u64, u64) {
        let pure_cost = u64::from(cost.base * cost.scale);
        let mul_extra = u64::from(cost.mul * cost.scale);
        let branch_extra = u64::from(cost.branch * cost.scale);
        let mut cycles = 0u64;
        let mut jumped = None;
        let mut done = 0usize;
        for insn in insns {
            if let Some(is_mul) = self.exec_pure(insn) {
                cycles += pure_cost + if is_mul { mul_extra } else { 0 };
                done += 1;
                continue;
            }
            match *insn {
                Insn::Dbg { tag } => {
                    if let Some(sink) = dbg.as_deref_mut() {
                        sink.push(tag);
                    }
                    cycles += pure_cost;
                    done += 1;
                }
                Insn::Jmp { target } => {
                    cycles += pure_cost + branch_extra;
                    done += 1;
                    jumped = Some(target);
                    break;
                }
                Insn::J { cond, target } => {
                    if cond.holds(self.psw) {
                        cycles += pure_cost + branch_extra;
                        jumped = Some(target);
                    } else {
                        cycles += pure_cost;
                    }
                    done += 1;
                    break;
                }
                _ => break,
            }
        }
        // Pure instructions never read the pc, so the whole prefix
        // advances it in one batch: the taken branch target, or
        // fall-through past everything retired.
        self.pc = jumped.unwrap_or(self.pc.wrapping_add(4 * done as u32));
        self.retired = self.retired.wrapping_add(done as u64);
        (done as u64, cycles)
    }

    /// Executes one decoded instruction.
    fn exec(&mut self, bus: &mut SocBus, cost: &CostModel, insn: Insn) -> StepOutcome {
        // Bus-free register/PSW operations — the bulk of any stream —
        // share the superblock executor's pure path and retire here.
        // `is_mul` already encodes the only cost distinction among pure
        // instructions, so the generic cost match is skipped.
        if let Some(is_mul) = self.exec_pure(&insn) {
            self.pc += 4;
            self.retired = self.retired.wrapping_add(1);
            return StepOutcome::Executed {
                cycles: (cost.base + if is_mul { cost.mul } else { 0 }) * cost.scale,
                dbg: None,
            };
        }

        let mut next_pc = self.pc + 4;
        let mut taken = false;
        let mut dbg = None;

        macro_rules! bus_try {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(fault) => return self.fault_to_trap(bus, fault),
                }
            };
        }

        match insn {
            Insn::Halt { code } => {
                self.retired = self.retired.wrapping_add(1);
                return StepOutcome::Halted { code };
            }
            Insn::Trap { vector } => {
                self.retired = self.retired.wrapping_add(1);
                return match self.enter_trap(bus, TrapKind::Software(vector), self.pc + 4) {
                    Ok(()) => StepOutcome::Executed {
                        cycles: cost.cost(&insn, true),
                        dbg: None,
                    },
                    Err(fatal) => StepOutcome::Fatal(fatal),
                };
            }
            Insn::Dbg { tag } => dbg = Some(tag),
            Insn::Ld { rd, ab, off } => {
                let addr = self.a(ab).wrapping_add_signed(i32::from(off));
                self.d[rd.index() as usize] = bus_try!(bus.read32(addr));
            }
            Insn::LdB { rd, ab, off } => {
                let addr = self.a(ab).wrapping_add_signed(i32::from(off));
                self.d[rd.index() as usize] = u32::from(bus_try!(bus.read8(addr)));
            }
            Insn::St { ab, off, rs } => {
                let addr = self.a(ab).wrapping_add_signed(i32::from(off));
                bus_try!(bus.write32(addr, self.d(rs)));
            }
            Insn::StB { ab, off, rs } => {
                let addr = self.a(ab).wrapping_add_signed(i32::from(off));
                bus_try!(bus.write8(addr, (self.d(rs) & 0xFF) as u8));
            }
            Insn::LdAbs { rd, addr } => self.d[rd.index() as usize] = bus_try!(bus.read32(addr)),
            Insn::StAbs { addr, rs } => bus_try!(bus.write32(addr, self.d(rs))),
            Insn::Jmp { target } => {
                next_pc = target;
                taken = true;
            }
            Insn::J { cond, target } => {
                if cond.holds(self.psw) {
                    next_pc = target;
                    taken = true;
                }
            }
            Insn::Call { target } => {
                bus_try!(self.push(bus, self.pc + 4));
                next_pc = target;
                taken = true;
            }
            Insn::CallR { ab } => {
                bus_try!(self.push(bus, self.pc + 4));
                next_pc = self.a(ab);
                taken = true;
            }
            Insn::Ret => {
                next_pc = bus_try!(self.pop(bus));
                taken = true;
            }
            Insn::RetI => {
                let psw_bits = bus_try!(self.pop(bus));
                self.psw = Psw::from_bits(psw_bits);
                next_pc = bus_try!(self.pop(bus));
                taken = true;
            }
            Insn::Push { rs } => bus_try!(self.push(bus, self.d(rs))),
            Insn::Pop { rd } => {
                let v = bus_try!(self.pop(bus));
                self.d[rd.index() as usize] = v;
            }
            Insn::PushA { ab } => bus_try!(self.push(bus, self.a(ab))),
            Insn::PopA { ad } => {
                let v = bus_try!(self.pop(bus));
                self.a[ad.index() as usize] = v;
            }
            // Everything bus-free already retired through `exec_pure`.
            other => unreachable!("exec_pure must cover {other:?}"),
        }

        self.pc = next_pc;
        self.retired = self.retired.wrapping_add(1);
        StepOutcome::Executed {
            cycles: cost.cost(&insn, taken),
            dbg,
        }
    }

    fn set_arith(&mut self, rd: DataReg, result: u32, carry: bool, overflow: bool) {
        self.d[rd.index() as usize] = result;
        self.psw.set_zn(result);
        self.psw.set_carry(carry);
        self.psw.set_overflow(overflow);
    }

    fn set_logic(&mut self, rd: DataReg, result: u32) {
        self.d[rd.index() as usize] = result;
        self.psw.set_zn(result);
    }

    fn push(&mut self, bus: &mut SocBus, value: u32) -> Result<(), BusFault> {
        let sp = self.a(AddrReg::SP).wrapping_sub(4);
        bus.write32(sp, value)?;
        self.a[AddrReg::SP.index() as usize] = sp;
        Ok(())
    }

    fn pop(&mut self, bus: &mut SocBus) -> Result<u32, BusFault> {
        let sp = self.a(AddrReg::SP);
        let value = bus.read32(sp)?;
        self.a[AddrReg::SP.index() as usize] = sp.wrapping_add(4);
        Ok(value)
    }

    fn fault_to_trap(&mut self, bus: &mut SocBus, fault: BusFault) -> StepOutcome {
        let kind = match fault {
            BusFault::Misaligned(_) => TrapKind::Misaligned,
            _ => TrapKind::BusError,
        };
        match self.enter_trap(bus, kind, self.pc + 4) {
            Ok(()) => StepOutcome::Executed {
                cycles: 1,
                dbg: None,
            },
            Err(fatal) => StepOutcome::Fatal(fatal),
        }
    }

    fn enter_trap(
        &mut self,
        bus: &mut SocBus,
        kind: TrapKind,
        return_pc: u32,
    ) -> Result<(), FatalError> {
        let vector = kind.vector();
        let handler = bus
            .read32(vector_entry_addr(vector))
            .map_err(|_| FatalError::DoubleFault { at: self.pc })?;
        if handler == 0 {
            return Err(FatalError::UnhandledTrap { kind, at: self.pc });
        }
        self.push(bus, return_pc)
            .map_err(|_| FatalError::DoubleFault { at: self.pc })?;
        self.push(bus, self.psw.bits())
            .map_err(|_| FatalError::DoubleFault { at: self.pc })?;
        self.psw.set_interrupts_enabled(false);
        self.pc = handler;
        Ok(())
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use advm_soc::{Derivative, PlatformId};

    use crate::fault::PlatformFault;

    use super::*;

    fn machine(asm: &str) -> (Cpu, SocBus) {
        let program = advm_asm::assemble_str(asm).unwrap_or_else(|e| panic!("{e}"));
        let mut image = advm_asm::Image::new();
        image.load_program(&program).unwrap();
        let mut bus = SocBus::new(
            &Derivative::sc88a(),
            PlatformId::GoldenModel,
            PlatformFault::None,
        );
        bus.load_image(&image);
        (Cpu::new(), bus)
    }

    fn run_until_halt(cpu: &mut Cpu, bus: &mut SocBus, max: u64) -> u8 {
        let cost = CostModel::functional();
        for _ in 0..max {
            match cpu.step(bus, &cost) {
                StepOutcome::Executed { cycles, .. } => bus.advance(u64::from(cycles)),
                StepOutcome::Halted { code } => return code,
                StepOutcome::Fatal(f) => panic!("fatal: {f}"),
            }
        }
        panic!("did not halt in {max} steps");
    }

    #[test]
    fn reset_state() {
        let cpu = Cpu::new();
        assert_eq!(cpu.pc(), RESET_PC);
        assert_eq!(cpu.a(AddrReg::SP), STACK_TOP);
        assert!(!cpu.psw().interrupts_enabled());
    }

    #[test]
    fn arithmetic_and_flags() {
        let (mut cpu, mut bus) = machine(
            "\
LOAD d1, #10
LOAD d2, #3
SUB d3, d1, d2
HALT #0
",
        );
        run_until_halt(&mut cpu, &mut bus, 100);
        assert_eq!(cpu.d(DataReg::D3), 7);
        assert!(!cpu.psw().zero());
        assert!(!cpu.psw().carry());
    }

    #[test]
    fn paper_insert_sequence_executes() {
        // The Figure 6 data-value construction: page 8 into a 5-bit field
        // at bit 0, with ENABLE at bit 8.
        let (mut cpu, mut bus) = machine(
            "\
MOVI d14, #0
INSERT d14, d14, #8, 0, 5
ORI d14, d14, #0x100
STORE [0xE0100], d14
LOAD d1, [0xE0104]
HALT #0
",
        );
        run_until_halt(&mut cpu, &mut bus, 100);
        assert_eq!(cpu.d(DataReg::D14), 0x108);
        assert_eq!(cpu.d(DataReg::D1) & 0x1F, 8, "ACTIVE_PAGE reads back");
    }

    #[test]
    fn call_and_return_via_stack() {
        let (mut cpu, mut bus) = machine(
            "\
_main:
    CALL fn
    HALT #7
fn:
    LOAD d5, #42
    RETURN
",
        );
        let code = run_until_halt(&mut cpu, &mut bus, 100);
        assert_eq!(code, 7);
        assert_eq!(cpu.d(DataReg::D5), 42);
        assert_eq!(cpu.a(AddrReg::SP), STACK_TOP, "stack balanced");
    }

    #[test]
    fn call_through_register_like_figure7() {
        let (mut cpu, mut bus) = machine(
            "\
_main:
    LOAD a12, fn
    CALL a12
    HALT #0
fn:
    LOAD d5, #9
    RETURN
",
        );
        run_until_halt(&mut cpu, &mut bus, 100);
        assert_eq!(cpu.d(DataReg::D5), 9);
    }

    #[test]
    fn software_trap_dispatches_through_vector() {
        let (mut cpu, mut bus) = machine(
            "\
.ORG 0x0
.WORD 0, 0, 0, 0, 0, 0, 0, 0, 0, handler
.ORG 0x100
_main:
    TRAP #9
    HALT #1
handler:
    LOAD d6, #0xAB
    RETI
",
        );
        let code = run_until_halt(&mut cpu, &mut bus, 100);
        assert_eq!(code, 1, "returned after RETI and hit HALT");
        assert_eq!(cpu.d(DataReg::D6), 0xAB);
    }

    #[test]
    fn unhandled_trap_is_fatal() {
        let (mut cpu, mut bus) = machine("TRAP #9\nHALT #0\n");
        let cost = CostModel::functional();
        match cpu.step(&mut bus, &cost) {
            StepOutcome::Fatal(FatalError::UnhandledTrap { kind, .. }) => {
                assert_eq!(kind, TrapKind::Software(9));
            }
            other => panic!("expected fatal, got {other:?}"),
        }
    }

    #[test]
    fn illegal_instruction_traps() {
        let (mut cpu, mut bus) = machine(
            "\
.ORG 0x0
.WORD 0, handler
.ORG 0x100
_main:
    .WORD 0xFFFFFFFF
    HALT #1
handler:
    HALT #2
",
        );
        let code = run_until_halt(&mut cpu, &mut bus, 10);
        assert_eq!(code, 2, "illegal word vectored to handler");
    }

    #[test]
    fn interrupt_taken_when_enabled() {
        let (mut cpu, mut bus) = machine(
            "\
.ORG 0x0
.WORD 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, isr
.ORG 0x100
_main:
    STORE [0xE0300], d0      ; INTC ENABLE = 0 first; set below
    LOAD d1, #1
    STORE [0xE0300], d1      ; enable line 0
    LOAD d2, #3
    STORE [0xE0204], d2      ; TIMER LOAD = 3
    LOAD d3, #3
    STORE [0xE0200], d3      ; TIMER EN|IE
    EI
spin:
    JMP spin
isr:
    HALT #5
",
        );
        let code = run_until_halt(&mut cpu, &mut bus, 1000);
        assert_eq!(code, 5, "timer interrupt reached the ISR");
    }

    #[test]
    fn interrupts_masked_when_disabled() {
        let (mut cpu, mut bus) = machine(
            "\
_main:
    LOAD d1, #1
    STORE [0xE0300], d1
    LOAD d2, #2
    STORE [0xE0204], d2
    LOAD d3, #3
    STORE [0xE0200], d3
    NOP
    NOP
    NOP
    NOP
    NOP
    HALT #0
",
        );
        // IE never set: the pending IRQ must not fire.
        let code = run_until_halt(&mut cpu, &mut bus, 100);
        assert_eq!(code, 0);
    }

    #[test]
    fn watchdog_is_nonmaskable() {
        let (mut cpu, mut bus) = machine(
            "\
.ORG 0x0
.WORD 0, 0, 0, 0, wdt_isr
.ORG 0x100
_main:
    LOAD d1, #5
    STORE [0xE0408], d1      ; WDT PERIOD = 5
    LOAD d1, #1
    STORE [0xE0400], d1      ; WDT EN (interrupts NOT enabled)
spin:
    JMP spin
wdt_isr:
    HALT #9
",
        );
        let code = run_until_halt(&mut cpu, &mut bus, 1000);
        assert_eq!(code, 9, "watchdog fires with IE clear");
    }

    #[test]
    fn cycle_model_charges_more_on_rtl() {
        let functional = CostModel::functional();
        let rtl = CostModel::rtl();
        let gate = CostModel::gate();
        let mul = Insn::Mul {
            rd: DataReg::D0,
            ra: DataReg::D0,
            rb: DataReg::D0,
        };
        assert_eq!(functional.cost(&mul, false), 1);
        assert_eq!(rtl.cost(&mul, false), 4);
        assert_eq!(gate.cost(&mul, false), 8);
        let jmp = Insn::Jmp { target: 0 };
        assert_eq!(rtl.cost(&jmp, true), 3);
        assert_eq!(rtl.cost(&jmp, false), 1);
    }

    #[test]
    fn adda_adjusts_pointer() {
        let (mut cpu, mut bus) = machine(
            "\
LOAD a4, #0x40000
ADDA a4, #8
ADDA a4, #-4
HALT #0
",
        );
        run_until_halt(&mut cpu, &mut bus, 100);
        assert_eq!(cpu.a(AddrReg::A4), 0x40004);
    }

    #[test]
    fn byte_load_store() {
        let (mut cpu, mut bus) = machine(
            "\
LOAD a4, #0x40000
LOAD d1, #0x1FF
STB [a4], d1
LDB d2, [a4]
HALT #0
",
        );
        run_until_halt(&mut cpu, &mut bus, 100);
        assert_eq!(
            cpu.d(DataReg::D2),
            0xFF,
            "byte store truncates, load zero-extends"
        );
    }

    #[test]
    fn fuel_zero_returns_without_retiring() {
        let (mut cpu, mut bus) = machine("LOAD d1, #1\nHALT #0\n");
        let cost = CostModel::functional();
        let pc = cpu.pc();
        assert_eq!(cpu.run(&mut bus, &cost, 0), BatchExit::OutOfFuel);
        assert_eq!(cpu.retired(), 0, "fuel == 0 must retire nothing");
        assert_eq!(cpu.pc(), pc, "fuel == 0 must not move the pc");
        assert_eq!(cpu.d(DataReg::D1), 0);
    }

    #[test]
    fn fuel_limit_terminates_near_u64_max() {
        // The old `retired.saturating_add(fuel)` limit saturated at
        // `u64::MAX` here and the run loop spun forever on a program
        // that never halts. The countdown budget stays exact.
        let (mut cpu, mut bus) = machine("spin:\n    JMP spin\n");
        cpu.retired = u64::MAX - 2;
        let cost = CostModel::functional();
        assert_eq!(cpu.run(&mut bus, &cost, 7), BatchExit::OutOfFuel);
        assert_eq!(cpu.retired(), (u64::MAX - 2).wrapping_add(7));
    }

    #[test]
    fn near_u64_max_halt_still_wins_over_fuel() {
        let (mut cpu, mut bus) = machine("NOP\nNOP\nHALT #3\n");
        cpu.retired = u64::MAX - 1;
        let cost = CostModel::functional();
        assert_eq!(cpu.run(&mut bus, &cost, 100), BatchExit::Halted { code: 3 });
        assert_eq!(cpu.retired(), (u64::MAX - 1).wrapping_add(3));
    }

    #[test]
    fn superblock_dispatch_clamps_to_fuel_mid_block() {
        // Ten straight-line ALU instructions form one superblock; a
        // budget of 3 must stop exactly 3 instructions in, not at the
        // block boundary.
        let (mut cpu, mut bus) = machine(
            "\
_main:
    MOVI d1, #1
    MOVI d2, #2
    MOVI d3, #3
    MOVI d4, #4
    MOVI d5, #5
    MOVI d6, #6
    MOVI d7, #7
    ADD d1, d1, d2
    XOR d2, d2, d3
    SUB d3, d3, d4
    HALT #0
",
        );
        assert!(bus.superblocks_enabled());
        let cost = CostModel::functional();
        assert_eq!(cpu.run(&mut bus, &cost, 3), BatchExit::OutOfFuel);
        assert_eq!(cpu.retired(), 3, "clamped mid-block, no overshoot");
        assert_eq!(cpu.d(DataReg::D3), 3);
        assert_eq!(cpu.d(DataReg::D4), 0, "fourth insn must not execute");
        // Resuming with ample fuel finishes the program normally.
        assert_eq!(
            cpu.run(&mut bus, &cost, 1_000),
            BatchExit::Halted { code: 0 }
        );
        assert_eq!(cpu.d(DataReg::D3), 0xFFFF_FFFF, "3 - 4 wrapped");
    }
}
