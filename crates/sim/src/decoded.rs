//! Predecoded instruction artifacts — decode once, dispatch many.
//!
//! The execution hot path used to re-fetch and re-decode every word
//! through the full bus match on every step. This module provides the
//! two halves of the cure:
//!
//! * [`DecodedProgram`] — an immutable, shareable predecode of a loaded
//!   [`Image`]: every word the image covers, already run through
//!   [`advm_isa::decode`]. Campaigns build one per *deduplicated* image
//!   (behind the content-keyed build cache) and seed every worker's
//!   platform from the same `Arc`, so a cell targeted at six platforms
//!   decodes once, not six times.
//! * `DecodeCache` (crate-internal) — the per-bus mutable cache the CPU
//!   fetches through. Slots memoise `(word, decode(word))` per aligned word of
//!   ROM, RAM and NVM; they are invalidated *precisely*: a RAM store
//!   clears the word it hits (self-modifying code), an NVM-controller
//!   program/erase clears the words it commits, and the ES-ROM
//!   jump-table-skew fault bypasses the cache for redirected fetches —
//!   so fault-audit matrices and golden traces are byte-identical with
//!   the cache on or off.
//!
//! On top of the word slots sits the *superblock* tier: straight-line
//! runs of bus-free decoded instructions (optionally ending in a
//! bus-free jump) are chained into immutable `Superblock`s
//! (crate-internal), shared via `Arc` and executed whole by the
//! batched CPU run loop — one
//! fuel/sim-end/async/timing check per block instead of per
//! instruction. Blocks are invalidated through the same precise hooks
//! as the slots beneath them, so the architectural stream is
//! byte-identical with blocks on or off.
//!
//! [`DecodeStats`] reports hits/misses/invalidations/preloads plus the
//! block-tier counters; the campaign layer aggregates them into its
//! `perf` block.

use std::sync::Arc;

use advm_asm::Image;
use advm_isa::{decode, Insn};
use advm_soc::memmap::{MemoryMap, NVM_SIZE, NVM_START, RAM_SIZE, RAM_START, ROM_SIZE, ROM_START};
use advm_soc::RegionKind;

/// One predecoded word slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// Not decoded yet, or invalidated by a write.
    Unknown,
    /// The word decodes to an instruction.
    Insn {
        /// The raw fetched word.
        word: u32,
        /// Its decoding.
        insn: Insn,
    },
    /// The word does not decode (illegal instruction).
    Illegal {
        /// The raw fetched word.
        word: u32,
    },
}

impl Slot {
    fn of(word: u32) -> Self {
        match decode(word) {
            Ok(insn) => Slot::Insn { word, insn },
            Err(_) => Slot::Illegal { word },
        }
    }
}

/// Decode-cache counters for one run.
///
/// The four word-slot counters (`hits`/`misses`/`invalidations`/
/// `preloaded`) are serialized into snapshots; the block-tier counters
/// are runtime telemetry only — the snapshot byte format predates the
/// superblock tier and stays frozen, so a restored machine restarts its
/// block counters from zero (the blocks themselves are rebuilt lazily
/// either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Fetches served from a live slot. Instructions dispatched through
    /// a superblock count here too — one hit per retired instruction —
    /// so `hits + misses` remains the total fetch count regardless of
    /// dispatch tier.
    pub hits: u64,
    /// Fetches that had to decode (cold slot, invalidated slot, cache
    /// disabled, or a skew-redirected / non-cacheable address).
    pub misses: u64,
    /// Slots cleared by writes (self-modifying RAM stores, NVM
    /// programming, image loads).
    pub invalidations: u64,
    /// Slots seeded from a shared [`DecodedProgram`] artifact.
    pub preloaded: u64,
    /// Superblocks constructed.
    pub blocks_built: u64,
    /// Superblocks dropped because a write touched a word they cover.
    pub block_invalidations: u64,
    /// Whole-block dispatches taken by the batched run loop.
    pub block_dispatches: u64,
    /// Instructions retired through block dispatch (each also counted
    /// in `hits`).
    pub block_insns: u64,
}

impl DecodeStats {
    /// Hit rate in `0.0..=1.0` (1.0 when nothing was fetched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Longest superblock, in words (terminator included). Bounds both the
/// build walk and the invalidation back-scan: a write at word `i` can
/// only be covered by blocks starting in `(i - MAX_BLOCK_WORDS, i]`.
pub(crate) const MAX_BLOCK_WORDS: usize = 64;

/// An immutable straight-line run of decoded instructions.
///
/// Every instruction in a block is *bus-free*: pure register/PSW
/// operations, plus at most one trailing `JMP`/`Jcc` (which computes its
/// target without touching the bus). Because nothing inside a block can
/// read or write the bus, raise an interrupt, end the simulation or
/// fault, the batched run loop may execute the whole block between two
/// boundary checks and advance time once by the summed cycle cost —
/// byte-identical to stepping it.
#[derive(Debug)]
pub(crate) struct Superblock {
    insns: Box<[Insn]>,
}

impl Superblock {
    /// Instructions (= words) the block covers.
    pub(crate) fn len(&self) -> usize {
        self.insns.len()
    }

    /// The decoded instructions, in execution order.
    pub(crate) fn insns(&self) -> &[Insn] {
        &self.insns
    }
}

/// How an instruction participates in superblock formation.
enum BlockRole {
    /// Bus-free, falls through: may appear anywhere in a block.
    Pure,
    /// Bus-free control flow: may end a block (`JMP`, `Jcc`).
    Terminator,
    /// Touches the bus, retires specially, or traps: never in a block.
    Stop,
}

fn block_role(insn: &Insn) -> BlockRole {
    // Exhaustive on purpose: a new instruction variant must make an
    // explicit block-eligibility decision here.
    match insn {
        Insn::Nop
        | Insn::Dbg { .. }
        | Insn::MovI { .. }
        | Insn::MovHi { .. }
        | Insn::Mov { .. }
        | Insn::MovDa { .. }
        | Insn::MovAd { .. }
        | Insn::MovAa { .. }
        | Insn::Lea { .. }
        | Insn::Add { .. }
        | Insn::AddI { .. }
        | Insn::Sub { .. }
        | Insn::Mul { .. }
        | Insn::And { .. }
        | Insn::AndI { .. }
        | Insn::Or { .. }
        | Insn::OrI { .. }
        | Insn::Xor { .. }
        | Insn::XorI { .. }
        | Insn::Shl { .. }
        | Insn::ShlI { .. }
        | Insn::Shr { .. }
        | Insn::ShrI { .. }
        | Insn::SarI { .. }
        | Insn::Not { .. }
        | Insn::Neg { .. }
        | Insn::Cmp { .. }
        | Insn::CmpI { .. }
        | Insn::Insert { .. }
        | Insn::Extract { .. }
        | Insn::Ei
        | Insn::Di
        | Insn::AddA { .. } => BlockRole::Pure,
        Insn::Jmp { .. } | Insn::J { .. } => BlockRole::Terminator,
        Insn::Halt { .. }
        | Insn::Trap { .. }
        | Insn::Ld { .. }
        | Insn::LdB { .. }
        | Insn::St { .. }
        | Insn::StB { .. }
        | Insn::LdAbs { .. }
        | Insn::StAbs { .. }
        | Insn::Call { .. }
        | Insn::CallR { .. }
        | Insn::Ret
        | Insn::RetI
        | Insn::Push { .. }
        | Insn::Pop { .. }
        | Insn::PushA { .. }
        | Insn::PopA { .. } => BlockRole::Stop,
    }
}

/// An immutable predecode of every word an [`Image`] covers.
///
/// Built once per distinct image (the campaign layer keys it by the same
/// content hash that dedupes builds) and shared across workers and
/// platforms via `Arc`; [`crate::Platform::load_prebuilt`] seeds a
/// platform's decode cache from it.
#[derive(Debug, Clone, Default)]
pub struct DecodedProgram {
    /// `(word address, slot)` pairs, address-ascending.
    entries: Vec<(u32, Slot)>,
}

impl DecodedProgram {
    /// Predecodes every aligned word the image covers.
    ///
    /// Partially covered words are filled with the backing region's
    /// reset byte (`0xFF` for NVM, `0` elsewhere) so the predecoded word
    /// equals exactly what the bus would fetch after
    /// [`crate::SocBus::load_image`]. Bytes outside ROM/RAM/NVM are
    /// skipped (they are not executable memory).
    pub fn from_image(image: &Image) -> Self {
        let map = MemoryMap::sc88();
        let mut entries = Vec::new();
        let mut current: Option<(u32, [u8; 4], RegionKind)> = None;
        let flush = |pending: &mut Option<(u32, [u8; 4], RegionKind)>,
                     out: &mut Vec<(u32, Slot)>| {
            if let Some((addr, bytes, _)) = pending.take() {
                out.push((addr, Slot::of(u32::from_le_bytes(bytes))));
            }
        };
        for (addr, byte) in image.iter() {
            let word_addr = addr & !3;
            let kind = match map.region_at(addr).map(|r| r.kind()) {
                Some(kind @ (RegionKind::Rom | RegionKind::Ram | RegionKind::Nvm)) => kind,
                _ => continue,
            };
            match &mut current {
                Some((pending_addr, bytes, _)) if *pending_addr == word_addr => {
                    bytes[(addr & 3) as usize] = byte;
                }
                _ => {
                    flush(&mut current, &mut entries);
                    let fill = if kind == RegionKind::Nvm { 0xFF } else { 0 };
                    let mut bytes = [fill; 4];
                    bytes[(addr & 3) as usize] = byte;
                    current = Some((word_addr, bytes, kind));
                }
            }
        }
        flush(&mut current, &mut entries);
        Self { entries }
    }

    /// Number of predecoded words.
    pub fn words(&self) -> usize {
        self.entries.len()
    }

    /// Whether the artifact is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn entries(&self) -> &[(u32, Slot)] {
        &self.entries
    }
}

const ROM_WORDS: usize = (ROM_SIZE / 4) as usize;
const RAM_WORDS: usize = (RAM_SIZE / 4) as usize;
const NVM_WORDS: usize = (NVM_SIZE / 4) as usize;

/// Block-map sentinel: no block-build attempt recorded for this word.
const BLOCK_UNKNOWN: u32 = 0;
/// Block-map sentinel: a build was attempted and produced no block
/// (negative cache — the word is illegal or starts with a bus-touching
/// instruction). Entries ≥ [`BLOCK_BASE`] are arena ids plus the base.
const BLOCK_NONE: u32 = 1;
const BLOCK_BASE: u32 = 2;

/// The per-bus decode cache: one lazily allocated slot array per
/// executable region, the superblock tier built over those slots, plus
/// the run's [`DecodeStats`].
#[derive(Debug, Clone)]
pub(crate) struct DecodeCache {
    rom: Vec<Slot>,
    ram: Vec<Slot>,
    nvm: Vec<Slot>,
    /// Per-region block map, lazily allocated like the slot arrays:
    /// indexed by start word, [`BLOCK_UNKNOWN`]/[`BLOCK_NONE`] sentinels
    /// or an arena id + [`BLOCK_BASE`].
    rom_blocks: Vec<u32>,
    ram_blocks: Vec<u32>,
    nvm_blocks: Vec<u32>,
    /// Shared-ownership block storage; freed ids are recycled.
    arena: Vec<Option<Arc<Superblock>>>,
    free: Vec<u32>,
    /// Bumped whenever any block may have been dropped; the run loop's
    /// one-entry block cache revalidates against it, so a cached `Arc`
    /// can never outlive an invalidation.
    generation: u64,
    enabled: bool,
    /// Whether the superblock tier is active (requires `enabled` too).
    blocks: bool,
    pub(crate) stats: DecodeStats,
}

impl Default for DecodeCache {
    fn default() -> Self {
        Self {
            rom: Vec::new(),
            ram: Vec::new(),
            nvm: Vec::new(),
            rom_blocks: Vec::new(),
            ram_blocks: Vec::new(),
            nvm_blocks: Vec::new(),
            arena: Vec::new(),
            free: Vec::new(),
            generation: 0,
            enabled: true,
            blocks: true,
            stats: DecodeStats::default(),
        }
    }
}

/// Which executable region a cached fetch targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecRegion {
    /// Read-only program memory.
    Rom,
    /// Volatile memory (self-modifying code lives here).
    Ram,
    /// Non-volatile memory (reprogrammed through the NVM controller).
    Nvm,
}

impl ExecRegion {
    /// Classifies an address, returning the region and its word index.
    pub(crate) fn classify(addr: u32) -> Option<(Self, usize)> {
        if addr < ROM_START + ROM_SIZE {
            Some((ExecRegion::Rom, ((addr - ROM_START) >> 2) as usize))
        } else if (RAM_START..RAM_START + RAM_SIZE).contains(&addr) {
            Some((ExecRegion::Ram, ((addr - RAM_START) >> 2) as usize))
        } else if (NVM_START..NVM_START + NVM_SIZE).contains(&addr) {
            Some((ExecRegion::Nvm, ((addr - NVM_START) >> 2) as usize))
        } else {
            None
        }
    }
}

impl DecodeCache {
    /// Enables or disables memoisation. Disabled, every fetch decodes
    /// fresh (the pre-refactor baseline the benches compare against) and
    /// the superblock tier — built over the slots — goes dormant too.
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.rom.clear();
            self.ram.clear();
            self.nvm.clear();
            self.drop_all_blocks();
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the superblock tier (default: enabled).
    /// Orthogonal to [`DecodeCache::set_enabled`]: with blocks off the
    /// per-word slot path still memoises, which is the PR 5 predecoded
    /// baseline the block tier is benchmarked against.
    pub(crate) fn set_blocks(&mut self, enabled: bool) {
        self.blocks = enabled;
        if !enabled {
            self.drop_all_blocks();
        }
    }

    pub(crate) fn blocks_enabled(&self) -> bool {
        self.blocks
    }

    fn drop_all_blocks(&mut self) {
        self.rom_blocks.clear();
        self.ram_blocks.clear();
        self.nvm_blocks.clear();
        self.arena.clear();
        self.free.clear();
        self.generation = self.generation.wrapping_add(1);
    }

    /// Monotonic block-invalidation epoch: bumped whenever any block may
    /// have been dropped. A `(pc, generation)`-keyed dispatch cache is
    /// valid exactly while this is unchanged.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// The slot array and word count of one region. A macro-free free
    /// function keeps the borrow of the slot vector disjoint from the
    /// stats counters.
    fn region_of<'a>(
        rom: &'a mut Vec<Slot>,
        ram: &'a mut Vec<Slot>,
        nvm: &'a mut Vec<Slot>,
        region: ExecRegion,
    ) -> (&'a mut Vec<Slot>, usize) {
        match region {
            ExecRegion::Rom => (rom, ROM_WORDS),
            ExecRegion::Ram => (ram, RAM_WORDS),
            ExecRegion::Nvm => (nvm, NVM_WORDS),
        }
    }

    /// Fetches through the cache: `mem` is the region's backing array,
    /// `idx` the word index within it. Returns the raw word and its
    /// decoding (`None` = illegal).
    pub(crate) fn fetch(
        &mut self,
        region: ExecRegion,
        mem: &[u8],
        idx: usize,
    ) -> (u32, Option<Insn>) {
        if !self.enabled {
            self.stats.misses += 1;
            let word = word_at(mem, idx);
            return (word, decode(word).ok());
        }
        let (slots, words) = Self::region_of(&mut self.rom, &mut self.ram, &mut self.nvm, region);
        if slots.is_empty() {
            // `resize` re-fills in place: invalidation `clear`s but
            // keeps capacity, so steady-state refills never re-allocate
            // the region's slot table.
            slots.resize(words, Slot::Unknown);
        }
        let slot = match slots[idx] {
            Slot::Unknown => {
                let fresh = Slot::of(word_at(mem, idx));
                slots[idx] = fresh;
                self.stats.misses += 1;
                fresh
            }
            live => {
                self.stats.hits += 1;
                live
            }
        };
        match slot {
            Slot::Insn { word, insn } => (word, Some(insn)),
            Slot::Illegal { word } => (word, None),
            Slot::Unknown => unreachable!("slot was just filled"),
        }
    }

    /// The block-map array and word count of one region (same disjoint
    /// borrow trick as [`DecodeCache::region_of`]).
    fn block_map_of<'a>(
        rom: &'a mut Vec<u32>,
        ram: &'a mut Vec<u32>,
        nvm: &'a mut Vec<u32>,
        region: ExecRegion,
    ) -> (&'a mut Vec<u32>, usize) {
        match region {
            ExecRegion::Rom => (rom, ROM_WORDS),
            ExecRegion::Ram => (ram, RAM_WORDS),
            ExecRegion::Nvm => (nvm, NVM_WORDS),
        }
    }

    /// Looks up — or builds — the superblock starting at word `idx` of
    /// `region`. Returns `None` when the tier is off, the start word
    /// lies in `excluded` (the ES-skew jump table, whose fetches must
    /// take the per-word bypass), or no bus-free run begins there (a
    /// negative result, cached until a write disturbs the
    /// neighbourhood).
    pub(crate) fn superblock(
        &mut self,
        region: ExecRegion,
        mem: &[u8],
        idx: usize,
        excluded: Option<(usize, usize)>,
    ) -> Option<Arc<Superblock>> {
        if !self.enabled || !self.blocks {
            return None;
        }
        if excluded.is_some_and(|(lo, hi)| idx >= lo && idx < hi) {
            return None;
        }
        let entry = {
            let (map, words) = Self::block_map_of(
                &mut self.rom_blocks,
                &mut self.ram_blocks,
                &mut self.nvm_blocks,
                region,
            );
            if map.is_empty() {
                map.resize(words, BLOCK_UNKNOWN);
            }
            map[idx]
        };
        match entry {
            BLOCK_UNKNOWN => {}
            BLOCK_NONE => return None,
            id => return self.arena[(id - BLOCK_BASE) as usize].clone(),
        }
        // Cold start: chain forward over the decoded slots, filling
        // cold ones silently — the dispatch accounts the fetches, the
        // build only materialises the chain.
        let mut insns: Vec<Insn> = Vec::new();
        {
            let (slots, words) =
                Self::region_of(&mut self.rom, &mut self.ram, &mut self.nvm, region);
            if slots.is_empty() {
                slots.resize(words, Slot::Unknown);
            }
            let mut cap = (idx + MAX_BLOCK_WORDS).min(words);
            if let Some((lo, _)) = excluded {
                if idx < lo {
                    cap = cap.min(lo);
                }
            }
            for (at, slot) in slots.iter_mut().enumerate().take(cap).skip(idx) {
                if *slot == Slot::Unknown {
                    *slot = Slot::of(word_at(mem, at));
                }
                let Slot::Insn { insn, .. } = *slot else {
                    break;
                };
                match block_role(&insn) {
                    BlockRole::Pure => insns.push(insn),
                    BlockRole::Terminator => {
                        insns.push(insn);
                        break;
                    }
                    BlockRole::Stop => break,
                }
            }
        }
        if insns.is_empty() {
            let (map, _) = Self::block_map_of(
                &mut self.rom_blocks,
                &mut self.ram_blocks,
                &mut self.nvm_blocks,
                region,
            );
            map[idx] = BLOCK_NONE;
            return None;
        }
        let block = Arc::new(Superblock {
            insns: insns.into_boxed_slice(),
        });
        let id = match self.free.pop() {
            Some(id) => {
                self.arena[id as usize] = Some(Arc::clone(&block));
                id
            }
            None => {
                self.arena.push(Some(Arc::clone(&block)));
                (self.arena.len() - 1) as u32
            }
        };
        self.stats.blocks_built += 1;
        let (map, _) = Self::block_map_of(
            &mut self.rom_blocks,
            &mut self.ram_blocks,
            &mut self.nvm_blocks,
            region,
        );
        map[idx] = id + BLOCK_BASE;
        Some(block)
    }

    /// Accounts one whole-block dispatch of `insns` retired
    /// instructions: each counts as a fetch hit (so `hits + misses`
    /// stays the total fetch count across dispatch tiers) plus the
    /// block-tier counters.
    pub(crate) fn note_block_dispatch(&mut self, insns: u64) {
        self.stats.hits += insns;
        self.stats.block_insns += insns;
        self.stats.block_dispatches += 1;
    }

    /// Drops every block that covers a word in `[start, end)`, plus any
    /// negative-cache entry a changed word could now upgrade to a block.
    /// A block starting at `j` covers at most `j + MAX_BLOCK_WORDS`
    /// words, so the back-scan window is bounded.
    fn drop_blocks_touching(&mut self, region: ExecRegion, start: usize, end: usize) {
        let map = match region {
            ExecRegion::Rom => &mut self.rom_blocks,
            ExecRegion::Ram => &mut self.ram_blocks,
            ExecRegion::Nvm => &mut self.nvm_blocks,
        };
        if map.is_empty() {
            return;
        }
        self.generation = self.generation.wrapping_add(1);
        let lo = start.saturating_sub(MAX_BLOCK_WORDS - 1);
        let hi = end.min(map.len());
        for (j, entry) in map.iter_mut().enumerate().take(hi).skip(lo) {
            if *entry == BLOCK_UNKNOWN {
                continue;
            }
            if *entry == BLOCK_NONE {
                // The written word may turn this start into a viable
                // block — retry the build next time it is dispatched.
                *entry = BLOCK_UNKNOWN;
                continue;
            }
            let id = (*entry - BLOCK_BASE) as usize;
            if self.arena[id].as_ref().is_some_and(|b| j + b.len() > start) {
                self.arena[id] = None;
                self.free.push(*entry - BLOCK_BASE);
                *entry = BLOCK_UNKNOWN;
                self.stats.block_invalidations += 1;
            }
        }
    }

    /// Invalidates one word slot (no-op while the region is cold).
    fn invalidate_word_slot(&mut self, region: ExecRegion, idx: usize) {
        let (slots, _) = Self::region_of(&mut self.rom, &mut self.ram, &mut self.nvm, region);
        if !slots.is_empty() && slots[idx] != Slot::Unknown {
            slots[idx] = Slot::Unknown;
            self.stats.invalidations += 1;
        }
    }

    /// Invalidates one word: its slot, and every block covering it.
    pub(crate) fn invalidate_word(&mut self, region: ExecRegion, idx: usize) {
        self.invalidate_word_slot(region, idx);
        self.drop_blocks_touching(region, idx, idx + 1);
    }

    /// Invalidates a word range (NVM page erase): the slots, and every
    /// block touching the range.
    pub(crate) fn invalidate_range(&mut self, region: ExecRegion, idx: usize, words: usize) {
        for i in idx..idx + words {
            self.invalidate_word_slot(region, i);
        }
        self.drop_blocks_touching(region, idx, idx + words);
    }

    /// Drops every slot and block (image load replaces backing memory
    /// wholesale).
    pub(crate) fn invalidate_all(&mut self) {
        for slots in [&mut self.rom, &mut self.ram, &mut self.nvm] {
            if !slots.is_empty() {
                self.stats.invalidations += 1;
                slots.clear();
            }
        }
        let live = self.arena.iter().filter(|e| e.is_some()).count() as u64;
        self.stats.block_invalidations += live;
        self.drop_all_blocks();
    }

    /// Serializes the cache's dynamic state: the enabled flag and the
    /// four word-slot counters. Slot contents and superblocks are *not*
    /// serialized — they are a pure memoisation over backing memory,
    /// lazily re-derived after restore — and the block-tier counters
    /// stay out too: the v1 byte format is frozen, so a restored run
    /// restarts them from zero.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        crate::savestate::put_bool(out, self.enabled);
        crate::savestate::put_u64(out, self.stats.hits);
        crate::savestate::put_u64(out, self.stats.misses);
        crate::savestate::put_u64(out, self.stats.invalidations);
        crate::savestate::put_u64(out, self.stats.preloaded);
    }

    /// Restores the cache's dynamic state, dropping any live slots (they
    /// may describe different backing memory). Stats are restored last:
    /// clearing the slots must not perturb the serialized counters.
    pub(crate) fn apply_state(
        &mut self,
        r: &mut crate::savestate::SaveReader<'_>,
    ) -> Result<(), crate::savestate::SaveStateError> {
        let enabled = r.take_bool()?;
        let stats = DecodeStats {
            hits: r.take_u64()?,
            misses: r.take_u64()?,
            invalidations: r.take_u64()?,
            preloaded: r.take_u64()?,
            ..DecodeStats::default()
        };
        self.set_enabled(enabled);
        self.invalidate_all();
        self.stats = stats;
        Ok(())
    }

    /// Seeds slots from a shared predecode artifact.
    pub(crate) fn preload(&mut self, program: &DecodedProgram) {
        if !self.enabled {
            return;
        }
        for &(addr, slot) in program.entries() {
            let Some((region, idx)) = ExecRegion::classify(addr) else {
                continue;
            };
            let (slots, words) =
                Self::region_of(&mut self.rom, &mut self.ram, &mut self.nvm, region);
            if slots.is_empty() {
                slots.resize(words, Slot::Unknown);
            }
            slots[idx] = slot;
            self.stats.preloaded += 1;
        }
    }
}

fn word_at(mem: &[u8], idx: usize) -> u32 {
    let o = idx * 4;
    u32::from_le_bytes([mem[o], mem[o + 1], mem[o + 2], mem[o + 3]])
}

#[cfg(test)]
mod tests {
    use advm_isa::encode;

    use super::*;

    #[test]
    fn from_image_predecodes_loaded_words() {
        let program = advm_asm::assemble_str("_main:\n    NOP\n    HALT #3\n").unwrap();
        let mut image = Image::new();
        image.load_program(&program).unwrap();
        let decoded = DecodedProgram::from_image(&image);
        assert_eq!(decoded.words(), 2);
        let (addr, slot) = decoded.entries()[0];
        assert_eq!(addr, 0x100, "reset PC word first");
        assert_eq!(
            slot,
            Slot::Insn {
                word: encode(&Insn::Nop),
                insn: Insn::Nop
            }
        );
    }

    #[test]
    fn nvm_fill_matches_erased_state() {
        // One byte loaded into an NVM word: the other three must read as
        // erased (0xFF), exactly what the bus fetch would return.
        let mut image = Image::new();
        let program = advm_asm::assemble_str(&format!(".ORG 0x{NVM_START:X}\n.BYTE 1\n")).unwrap();
        image.load_program(&program).unwrap();
        let decoded = DecodedProgram::from_image(&image);
        assert_eq!(decoded.words(), 1);
        let (_, slot) = decoded.entries()[0];
        let word = match slot {
            Slot::Insn { word, .. } | Slot::Illegal { word } => word,
            Slot::Unknown => panic!("loaded word must be decoded"),
        };
        assert_eq!(word, 0xFFFF_FF01);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache = DecodeCache::default();
        let mem = encode(&Insn::Nop).to_le_bytes().to_vec();
        let (word, insn) = cache.fetch(ExecRegion::Rom, &mem, 0);
        assert_eq!(word, encode(&Insn::Nop));
        assert_eq!(insn, Some(Insn::Nop));
        assert_eq!(cache.stats.misses, 1);
        cache.fetch(ExecRegion::Rom, &mem, 0);
        assert_eq!(cache.stats.hits, 1);
    }

    #[test]
    fn invalidation_forces_redecode() {
        let mut cache = DecodeCache::default();
        let mut mem = encode(&Insn::Nop).to_le_bytes().to_vec();
        cache.fetch(ExecRegion::Ram, &mem, 0);
        mem.copy_from_slice(&encode(&Insn::Halt { code: 7 }).to_le_bytes());
        // Stale without invalidation…
        let (_, insn) = cache.fetch(ExecRegion::Ram, &mem, 0);
        assert_eq!(insn, Some(Insn::Nop));
        // …fresh after it.
        cache.invalidate_word(ExecRegion::Ram, 0);
        assert_eq!(cache.stats.invalidations, 1);
        let (_, insn) = cache.fetch(ExecRegion::Ram, &mem, 0);
        assert_eq!(insn, Some(Insn::Halt { code: 7 }));
    }

    #[test]
    fn disabled_cache_always_decodes() {
        let mut cache = DecodeCache::default();
        cache.set_enabled(false);
        let mem = encode(&Insn::Nop).to_le_bytes().to_vec();
        cache.fetch(ExecRegion::Rom, &mem, 0);
        cache.fetch(ExecRegion::Rom, &mem, 0);
        assert_eq!(cache.stats.hits, 0);
        assert_eq!(cache.stats.misses, 2);
    }

    #[test]
    fn preload_seeds_slots_as_hits() {
        let program = advm_asm::assemble_str("_main:\n    NOP\n    HALT #0\n").unwrap();
        let mut image = Image::new();
        image.load_program(&program).unwrap();
        let decoded = DecodedProgram::from_image(&image);
        let mut cache = DecodeCache::default();
        cache.preload(&decoded);
        assert_eq!(cache.stats.preloaded, 2);
        let mem = vec![0u8; 0x200];
        let (_, insn) = cache.fetch(ExecRegion::Rom, &mem, 0x100 / 4);
        assert_eq!(insn, Some(Insn::Nop));
        assert_eq!(cache.stats.hits, 1);
        assert_eq!(cache.stats.misses, 0);
    }

    #[test]
    fn stats_hit_rate() {
        let stats = DecodeStats {
            hits: 3,
            misses: 1,
            ..DecodeStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(DecodeStats::default().hit_rate(), 1.0);
    }
}
