//! # advm-sim — the six SC88 execution platforms
//!
//! The paper's §1 lists the development platforms a compiled assembler
//! test suite must cross unchanged: golden reference model, HDL-RTL
//! simulation, gate-level simulation, hardware accelerator, bondout
//! silicon and product silicon. This crate implements all six over one
//! architectural core:
//!
//! * [`cpu`] — the SC88 execution core (identical everywhere),
//! * [`bus`] — memory plus derivative-placed peripherals
//!   ([`periph`]: UART, page module, timer, interrupt controller,
//!   watchdog, NVM controller, CRC unit, test-bench mailbox),
//! * [`platform`] — per-platform cycle models, debug visibility, reset
//!   behaviour and the run loop,
//! * [`fault`] — injectable platform bugs,
//! * [`diverge`] — cross-platform result comparison (the "if they don't
//!   execute the code the same way, a bug has been found" check),
//! * [`savestate`] — versioned, byte-stable whole-machine snapshots
//!   ([`Platform::snapshot`]/[`Platform::restore`]/[`Platform::fork`]),
//! * [`bisect`] — snapshot-powered binary search for the first retired
//!   instruction at which two platforms diverge.
//!
//! ```
//! use advm_asm::{assemble_str, Image};
//! use advm_sim::platform::run_image;
//! use advm_soc::{Derivative, PlatformId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble_str(
//!     "_main:\n    LOAD d1, #0x600D0000\n    STORE [0xEFF00], d1\n    STORE [0xEFF08], d1\n",
//! )?;
//! let mut image = Image::new();
//! image.load_program(&program)?;
//! let result = run_image(PlatformId::GoldenModel, &Derivative::sc88a(), &image);
//! assert!(result.passed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisect;
pub mod bus;
pub mod cpu;
pub mod decoded;
pub mod diverge;
pub mod fault;
pub mod periph;
pub mod platform;
pub mod savestate;
pub mod trace;

pub use bisect::{bisect_divergence, FirstDivergence};
pub use bus::{BusFault, SocBus};
pub use cpu::{BatchExit, CostModel, Cpu, FatalError, StepOutcome};
pub use decoded::{DecodeStats, DecodedProgram};
pub use diverge::{compare, DivergenceError, DivergenceReport};
pub use fault::{PlatformFault, BUS_WAIT_STATE_CYCLES};
pub use platform::{run_image, EndReason, Platform, RunResult, DEFAULT_FUEL};
pub use savestate::{SaveState, SaveStateError, SAVESTATE_MAGIC, SAVESTATE_VERSION};
pub use trace::{ExecTrace, MmioEvent, MmioTrace, TraceRecord};
