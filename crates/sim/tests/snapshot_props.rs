//! Snapshot semantics: byte-stability, restore fidelity, and the core
//! fork guarantee — a run resumed from a snapshot is byte-identical to
//! one that never stopped.

use advm_asm::{assemble_str, Image};
use advm_sim::{Platform, PlatformFault, SaveStateError};
use advm_soc::testbench::PlatformId;
use advm_soc::Derivative;
use proptest::prelude::*;

fn image(asm: &str) -> Image {
    let program = assemble_str(asm).unwrap_or_else(|e| panic!("{e}"));
    let mut image = Image::new();
    image.load_program(&program).unwrap();
    image
}

fn busy_test() -> Image {
    // Touches registers, RAM, the page module and the mailbox before
    // passing — enough machine-state churn to make a shallow snapshot
    // visibly wrong.
    image(
        "\
_main:
    LOAD d1, #0xDEADBEEF
    STORE [0x40100], d1
    LOAD d2, [0x40100]
    MOVI d14, #0
    INSERT d14, d14, #3, 0, 5
    ORI d14, d14, #0x100
    STORE [0xE0100], d14
    LOAD d3, [0xE0104]
    LOAD d4, #25
loop:
    SUB d4, d4, #1
    CMP d4, #0
    JNE loop
    LOAD d5, #0x600D0000
    STORE [0xEFF00], d5
    STORE [0xEFF08], d5
    HALT #0
",
    )
}

/// Strips per-run observability (dbg markers are run-local by design;
/// decode stats are perf telemetry) so two results compare on
/// architectural outcome only.
fn arch_result(r: &advm_sim::RunResult) -> (String, u64, String, Vec<u8>) {
    (
        format!("{:?}", r.end),
        r.insns,
        r.console.clone(),
        r.uart_tx.clone(),
    )
}

#[test]
fn snapshot_bytes_are_stable_across_capture_and_restore() {
    let deriv = Derivative::sc88a();
    let mut p = Platform::new(PlatformId::RtlSim, &deriv);
    p.enable_trace(8);
    p.load_image(&busy_test());
    p.set_fuel(10);
    p.run();

    let snap = p.snapshot();
    assert_eq!(
        snap.as_bytes(),
        p.snapshot().as_bytes(),
        "capturing twice without running is byte-identical"
    );

    let mut q = Platform::new(PlatformId::RtlSim, &deriv);
    q.restore(&snap).unwrap();
    assert_eq!(
        q.snapshot().as_bytes(),
        snap.as_bytes(),
        "restore → snapshot reproduces the blob byte-for-byte"
    );
    assert_eq!(q.state_digest(), p.state_digest());
}

#[test]
fn restore_rejects_wrong_platform_and_fault() {
    let deriv = Derivative::sc88a();
    let mut p = Platform::new(PlatformId::GoldenModel, &deriv);
    p.load_image(&busy_test());
    let snap = p.snapshot();

    let mut other = Platform::new(PlatformId::GateSim, &deriv);
    assert_eq!(other.restore(&snap), Err(SaveStateError::PlatformMismatch));

    let mut faulted = Platform::with_fault(
        PlatformId::GoldenModel,
        &deriv,
        PlatformFault::UartDropsBytes,
    );
    assert_eq!(faulted.restore(&snap), Err(SaveStateError::FaultMismatch));

    // from_snapshot is the sanctioned way to re-target the fault.
    let forked = Platform::from_snapshot(&snap, &deriv, PlatformFault::UartDropsBytes).unwrap();
    assert_eq!(forked.fault(), PlatformFault::UartDropsBytes);
    assert_eq!(forked.state_digest(), p.state_digest());
}

#[test]
fn fork_safety_tracks_mmio_coverage() {
    let deriv = Derivative::sc88a();
    let mut p = Platform::new(PlatformId::ProductSilicon, &deriv);
    p.load_image(&busy_test());

    // Nothing run yet: no MMIO touched, every per-module fault forks.
    assert!(p.fork_safe(PlatformFault::None));
    assert!(p.fork_safe(PlatformFault::PageActiveOffByOne));
    assert!(p.fork_safe(PlatformFault::BusExtraWaitStates));
    assert!(
        !p.fork_safe(PlatformFault::EsDispatchSkewed),
        "ROM dispatch-table fetches are not MMIO-tracked, never forkable"
    );

    p.run();
    // The run selected a page and wrote the mailbox: those faults can
    // no longer fork, but untouched modules still can.
    assert!(!p.fork_safe(PlatformFault::PageActiveOffByOne));
    assert!(!p.fork_safe(PlatformFault::MailboxScratchStuck));
    assert!(!p.fork_safe(PlatformFault::BusExtraWaitStates));
    assert!(p.fork_safe(PlatformFault::UartDropsBytes));
    assert!(p.fork_safe(PlatformFault::TimerNeverExpires));
    assert!(p.fork_safe(PlatformFault::None));
}

proptest! {
    // Pinned so CI case counts don't drift with proptest defaults.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fork guarantee, on every platform: stop a machine after `k`
    /// instructions, snapshot, resume a *fresh* machine from the blob —
    /// the end state digests equal a machine that ran straight through,
    /// and the observable result agrees.
    #[test]
    fn resumed_run_equals_straight_run(
        split in 1u64..30,
        platform_idx in 0usize..PlatformId::ALL.len(),
    ) {
        let platform_id = PlatformId::ALL[platform_idx];
        let deriv = Derivative::sc88a();
        let img = busy_test();

        let mut straight = Platform::new(platform_id, &deriv);
        straight.enable_trace(16);
        straight.load_image(&img);
        let full = straight.run();

        let mut prefix = Platform::new(platform_id, &deriv);
        prefix.enable_trace(16);
        prefix.load_image(&img);
        prefix.set_fuel(split);
        prefix.run();

        let mut resumed = Platform::from_snapshot(
            &prefix.snapshot(), &deriv, PlatformFault::None,
        ).expect("live snapshot applies");
        resumed.set_fuel(advm_sim::DEFAULT_FUEL);
        let rest = resumed.run();

        prop_assert_eq!(resumed.state_digest(), straight.state_digest());
        prop_assert_eq!(arch_result(&rest), arch_result(&full));
        prop_assert_eq!(resumed.cpu().retired(), straight.cpu().retired());
        if let (Some(a), Some(b)) = (resumed.trace(), straight.trace()) {
            prop_assert_eq!(a.signature(), b.signature(), "trace survives the seam");
            prop_assert_eq!(a.records(), b.records());
        }
        // Cycle-accurate timing also survives the seam.
        prop_assert_eq!(resumed.bus().now(), straight.bus().now());
    }

    /// Register/memory state after arbitrary ALU work round-trips
    /// through a snapshot exactly.
    #[test]
    fn alu_state_survives_snapshot(ops in proptest::collection::vec(0u8..6, 1..40)) {
        let mut text = String::from("_main:\n");
        for (i, op) in ops.iter().enumerate() {
            let d = 1 + (i % 10);
            let imm = (i as u32).wrapping_mul(37) % 4000;
            match op {
                0 => text.push_str(&format!("    ADD d{d}, d{d}, #{imm}\n")),
                1 => text.push_str(&format!("    SUB d{d}, d{d}, #{imm}\n")),
                2 => text.push_str(&format!("    ORI d{d}, d{d}, #{imm}\n")),
                3 => text.push_str(&format!("    ANDI d{d}, d{d}, #{imm}\n")),
                4 => text.push_str(&format!("    MOVI d{d}, #{imm}\n")),
                _ => text.push_str(&format!("    XORI d{d}, d{d}, #{imm}\n")),
            }
        }
        text.push_str("    HALT #0\n");
        let img = image(&text);

        let mut p = Platform::new(PlatformId::GoldenModel, &Derivative::sc88a());
        p.load_image(&img);
        p.run();

        let mut q = Platform::new(PlatformId::GoldenModel, &Derivative::sc88a());
        q.restore(&p.snapshot()).unwrap();
        prop_assert_eq!(q.cpu().pc(), p.cpu().pc());
        prop_assert_eq!(q.state_digest(), p.state_digest());
        prop_assert_eq!(q.snapshot().as_bytes(), p.snapshot().as_bytes());
    }
}
