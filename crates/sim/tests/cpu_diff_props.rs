//! Differential property test: the CPU core against an independent
//! oracle.
//!
//! Random straight-line ALU programs are assembled from canonical
//! syntax, executed on the golden-model platform, and the final data
//! register file is compared against a second, minimal implementation of
//! the SC88 ALU semantics written here from the architecture
//! description. A divergence means one of the two implementations
//! misread the spec.

use advm_asm::{assemble_str, Image};
use advm_isa::{BitSrc, DataReg, Insn};
use advm_sim::Platform;
use advm_soc::{Derivative, PlatformId};
use proptest::prelude::*;

fn arb_data_reg() -> impl Strategy<Value = DataReg> {
    (0u8..16).prop_map(|i| DataReg::from_index(i).expect("in range"))
}

fn arb_bitfield() -> impl Strategy<Value = (u8, u8)> {
    (0u8..32).prop_flat_map(|pos| (Just(pos), 1u8..=(32 - pos)))
}

/// Straight-line ALU instructions only: no memory, no control flow.
fn arb_alu_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_data_reg(), any::<u16>()).prop_map(|(rd, imm)| Insn::MovI { rd, imm }),
        (arb_data_reg(), any::<u16>()).prop_map(|(rd, imm)| Insn::MovHi { rd, imm }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Mov { rd, ra }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Add {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<i16>()).prop_map(|(rd, ra, imm)| Insn::AddI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Sub {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Mul {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::And {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::AndI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Or {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::OrI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Xor {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::XorI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Shl {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::ShlI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Shr {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::ShrI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::SarI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Not { rd, ra }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Neg { rd, ra }),
        (
            arb_data_reg(),
            arb_data_reg(),
            arb_data_reg(),
            arb_bitfield()
        )
            .prop_map(|(rd, ra, rs, (pos, width))| Insn::Insert {
                rd,
                ra,
                src: BitSrc::Reg(rs),
                pos,
                width
            }),
        (arb_data_reg(), arb_data_reg(), 0u8..128, arb_bitfield()).prop_map(
            |(rd, ra, imm, (pos, width))| Insn::Insert {
                rd,
                ra,
                src: BitSrc::Imm(imm),
                pos,
                width
            }
        ),
        (arb_data_reg(), arb_data_reg(), arb_bitfield())
            .prop_map(|(rd, ra, (pos, width))| Insn::Extract { rd, ra, pos, width }),
    ]
}

/// The oracle: a from-scratch interpretation of the ALU semantics.
fn oracle(regs: &mut [u32; 16], insn: &Insn) {
    let r = |regs: &[u32; 16], reg: DataReg| regs[reg.index() as usize];
    let mask = |width: u8| -> u32 {
        if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        }
    };
    match *insn {
        Insn::MovI { rd, imm } => regs[rd.index() as usize] = u32::from(imm),
        Insn::MovHi { rd, imm } => {
            regs[rd.index() as usize] =
                (u32::from(imm) << 16) | (regs[rd.index() as usize] & 0xFFFF)
        }
        Insn::Mov { rd, ra } => regs[rd.index() as usize] = r(regs, ra),
        Insn::Add { rd, ra, rb } => {
            regs[rd.index() as usize] = r(regs, ra).wrapping_add(r(regs, rb))
        }
        Insn::AddI { rd, ra, imm } => {
            regs[rd.index() as usize] = r(regs, ra).wrapping_add(i32::from(imm) as u32)
        }
        Insn::Sub { rd, ra, rb } => {
            regs[rd.index() as usize] = r(regs, ra).wrapping_sub(r(regs, rb))
        }
        Insn::Mul { rd, ra, rb } => {
            regs[rd.index() as usize] = r(regs, ra).wrapping_mul(r(regs, rb))
        }
        Insn::And { rd, ra, rb } => regs[rd.index() as usize] = r(regs, ra) & r(regs, rb),
        Insn::AndI { rd, ra, imm } => regs[rd.index() as usize] = r(regs, ra) & u32::from(imm),
        Insn::Or { rd, ra, rb } => regs[rd.index() as usize] = r(regs, ra) | r(regs, rb),
        Insn::OrI { rd, ra, imm } => regs[rd.index() as usize] = r(regs, ra) | u32::from(imm),
        Insn::Xor { rd, ra, rb } => regs[rd.index() as usize] = r(regs, ra) ^ r(regs, rb),
        Insn::XorI { rd, ra, imm } => regs[rd.index() as usize] = r(regs, ra) ^ u32::from(imm),
        Insn::Shl { rd, ra, rb } => {
            regs[rd.index() as usize] = r(regs, ra).wrapping_shl(r(regs, rb) & 31)
        }
        Insn::ShlI { rd, ra, sh } => {
            regs[rd.index() as usize] = r(regs, ra).wrapping_shl(u32::from(sh))
        }
        Insn::Shr { rd, ra, rb } => {
            regs[rd.index() as usize] = r(regs, ra).wrapping_shr(r(regs, rb) & 31)
        }
        Insn::ShrI { rd, ra, sh } => {
            regs[rd.index() as usize] = r(regs, ra).wrapping_shr(u32::from(sh))
        }
        Insn::SarI { rd, ra, sh } => {
            regs[rd.index() as usize] = ((r(regs, ra) as i32) >> sh) as u32
        }
        Insn::Not { rd, ra } => regs[rd.index() as usize] = !r(regs, ra),
        Insn::Neg { rd, ra } => regs[rd.index() as usize] = 0u32.wrapping_sub(r(regs, ra)),
        Insn::Insert {
            rd,
            ra,
            src,
            pos,
            width,
        } => {
            let value = match src {
                BitSrc::Reg(reg) => r(regs, reg),
                BitSrc::Imm(v) => u32::from(v),
            };
            let m = mask(width);
            regs[rd.index() as usize] = (r(regs, ra) & !(m << pos)) | ((value & m) << pos);
        }
        Insn::Extract { rd, ra, pos, width } => {
            regs[rd.index() as usize] = (r(regs, ra) >> pos) & mask(width);
        }
        ref other => panic!("oracle does not model {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cpu_matches_oracle(insns in proptest::collection::vec(arb_alu_insn(), 1..60)) {
        // Execute on the platform.
        let mut text: String = insns.iter().map(|i| format!("{i}\n")).collect();
        text.push_str("HALT #0\n");
        let program = assemble_str(&text).expect("assembles");
        let mut image = Image::new();
        image.load_program(&program).expect("links");
        let mut platform = Platform::new(PlatformId::GoldenModel, &Derivative::sc88a());
        platform.load_image(&image);
        let result = platform.run();
        prop_assert!(matches!(result.end, advm_sim::EndReason::Halt(0)), "{result}");

        // Execute on the oracle.
        let mut regs = [0u32; 16];
        for insn in &insns {
            oracle(&mut regs, insn);
        }

        for i in 0..16u8 {
            let reg = DataReg::from_index(i).expect("in range");
            prop_assert_eq!(
                platform.cpu().d(reg),
                regs[i as usize],
                "divergence in d{} after {:?}",
                i,
                insns
            );
        }
    }
}
