//! Decode-cache invalidation: every path that can change an executable
//! word must force a re-decode, and the cached instruction stream must
//! be byte-identical to the uncached one.
//!
//! Three mutation paths exist: self-modifying RAM stores, NVM-controller
//! programming, and the ES-ROM jump-table-skew fault (which redirects
//! fetches away from the predecoded slot). Each is exercised end to end
//! through guest code — no test reaches into the cache by hand.

use advm_asm::{assemble_str, Image};
use advm_isa::{encode, Insn};
use advm_sim::{DecodedProgram, Platform, PlatformFault, RunResult};
use advm_soc::{Derivative, PlatformId};

fn image(asm: &str) -> Image {
    let program = assemble_str(asm).unwrap_or_else(|e| panic!("{e}"));
    let mut image = Image::new();
    image.load_program(&program).unwrap();
    image
}

/// Counter-consistency invariants that must survive every invalidation
/// path. Every retired instruction is served by exactly one *counted*
/// fetch — a slot hit, a slot miss (including the disabled-cache,
/// MMIO-execute and ES-skew-bypass paths) or a superblock dispatch
/// (which counts one hit per executed instruction) — so the perf layer
/// can never report more hits than fetches, and invalidation can never
/// drop more blocks than were ever built.
fn assert_stats_consistent(result: &RunResult) {
    let d = &result.decode;
    assert!(
        d.hits + d.misses >= result.insns,
        "retired insns without a counted fetch: {d:?} vs {} insns",
        result.insns
    );
    assert!(
        d.block_insns <= d.hits,
        "block-dispatched insns are a subset of hits: {d:?}"
    );
    assert!(
        d.block_dispatches <= d.block_insns,
        "every dispatch retires at least one insn: {d:?}"
    );
    assert!(
        d.block_invalidations <= d.blocks_built,
        "cannot drop more blocks than were built: {d:?}"
    );
    let rate = d.hit_rate();
    assert!((0.0..=1.0).contains(&rate), "hit rate out of range: {d:?}");
}

/// Runs an image on the golden model four ways — decode cache enabled,
/// disabled, and enabled with a predecoded artifact, plus a traced
/// cached run — and asserts the architectural results are identical.
/// Returns the cached run for further assertions.
fn run_all_modes(img: &Image) -> RunResult {
    let derivative = Derivative::sc88a();
    let cached = {
        let mut p = Platform::new(PlatformId::GoldenModel, &derivative);
        p.load_image(img);
        p.run()
    };
    let uncached = {
        let mut p = Platform::new(PlatformId::GoldenModel, &derivative);
        p.set_decode_cache(false);
        p.load_image(img);
        p.run()
    };
    let preloaded = {
        let mut p = Platform::new(PlatformId::GoldenModel, &derivative);
        p.load_prebuilt(img, &DecodedProgram::from_image(img));
        p.run()
    };
    for other in [&uncached, &preloaded] {
        assert_eq!(cached.end, other.end);
        assert_eq!(cached.outcome, other.outcome);
        assert_eq!(cached.insns, other.insns);
        assert_eq!(cached.cycles, other.cycles);
        assert_eq!(cached.console, other.console);
    }
    assert_eq!(uncached.decode.hits, 0, "disabled cache never hits");
    for result in [&cached, &uncached, &preloaded] {
        assert_stats_consistent(result);
    }
    cached
}

#[test]
fn self_modifying_ram_write_forces_redecode() {
    // Copy a two-instruction routine (LOAD d5, #1; RETURN) into RAM,
    // call it, then overwrite the first word with LOAD d5, #2 and call
    // again. A stale decode slot would return 1 twice.
    let load1 = encode(&Insn::MovI {
        rd: advm_isa::DataReg::D5,
        imm: 1,
    });
    let load2 = encode(&Insn::MovI {
        rd: advm_isa::DataReg::D5,
        imm: 2,
    });
    let ret = encode(&Insn::Ret);
    let img = image(&format!(
        "\
RAM_CODE .EQU 0x50000
_main:
    LOAD a4, #RAM_CODE
    LOAD d1, #0x{load1:X}
    STORE [a4], d1
    LOAD d1, #0x{ret:X}
    STORE [a4 + 4], d1
    CALL a4
    MOV d10, d5              ; first call: 1
    LOAD d1, #0x{load2:X}
    STORE [a4], d1           ; self-modify the RAM routine
    CALL a4
    MOV d11, d5              ; second call: 2
    HALT #0
"
    ));
    let derivative = Derivative::sc88a();
    let mut platform = Platform::new(PlatformId::GoldenModel, &derivative);
    platform.load_image(&img);
    let result = platform.run();
    assert_eq!(result.end, advm_sim::EndReason::Halt(0));
    assert_eq!(platform.cpu().d(advm_isa::DataReg::D10), 1);
    assert_eq!(
        platform.cpu().d(advm_isa::DataReg::D11),
        2,
        "stale decode slot served the old instruction"
    );
    assert!(
        result.decode.invalidations > 0,
        "RAM stores over executed code must invalidate: {:?}",
        result.decode
    );
    assert_stats_consistent(&result);
    run_all_modes(&img);
}

#[test]
fn nvmc_programming_forces_redecode() {
    // Program `LOAD d5, #7; RETURN` into NVM through the controller,
    // call it, then reprogram the first word (erase + write) to
    // `LOAD d5, #9` and call again. The NVM commit happens inside
    // `SocBus::advance`, which must invalidate the decoded words.
    let load7 = encode(&Insn::MovI {
        rd: advm_isa::DataReg::D5,
        imm: 7,
    });
    let load9 = encode(&Insn::MovI {
        rd: advm_isa::DataReg::D5,
        imm: 9,
    });
    let ret = encode(&Insn::Ret);
    let img = image(&format!(
        "\
NVMC .EQU 0xE0500
NVM_BASE .EQU 0x80000
_main:
    CALL unlock
    LOAD d1, #0              ; offset 0
    LOAD d2, #0x{load7:X}
    CALL program
    LOAD d1, #4
    LOAD d2, #0x{ret:X}
    CALL program
    LOAD a4, #NVM_BASE
    CALL a4
    MOV d10, d5              ; first call: 7
    CALL unlock
    LOAD d1, #0
    STORE [NVMC + 0x08], d1
    LOAD d1, #2              ; CMD_ERASE (page 0)
    STORE [NVMC + 0x14], d1
    CALL wait
    CALL unlock
    LOAD d1, #0
    LOAD d2, #0x{load9:X}
    CALL program
    LOAD d1, #4
    LOAD d2, #0x{ret:X}
    CALL program
    CALL a4
    MOV d11, d5              ; second call: 9
    HALT #0
unlock:
    LOAD d1, #0x55
    STORE [NVMC], d1
    LOAD d1, #0xAA
    STORE [NVMC], d1
    RETURN
program:                     ; d1 = offset, d2 = word
    STORE [NVMC + 0x08], d1
    STORE [NVMC + 0x0C], d2
    LOAD d3, #1              ; CMD_WRITE
    STORE [NVMC + 0x14], d3
wait:
    LOAD d3, [NVMC + 0x10]   ; STATUS
    ANDI d3, d3, #1          ; BUSY
    CMP d3, #0
    JNE wait
    RETURN
"
    ));
    let derivative = Derivative::sc88a();
    let mut platform = Platform::new(PlatformId::GoldenModel, &derivative);
    platform.load_image(&img);
    let result = platform.run();
    assert_eq!(result.end, advm_sim::EndReason::Halt(0), "{result}");
    assert_eq!(platform.cpu().d(advm_isa::DataReg::D10), 7);
    assert_eq!(
        platform.cpu().d(advm_isa::DataReg::D11),
        9,
        "NVM reprogram must invalidate the decoded slots"
    );
    assert!(
        result.decode.invalidations > 0,
        "NVM commits over executed code must invalidate: {:?}",
        result.decode
    );
    assert_stats_consistent(&result);
    run_all_modes(&img);
}

#[test]
fn es_jump_table_skew_bypasses_preloaded_decode() {
    // Eight distinct HALT codes across the seven-slot ES jump table plus
    // one word after it. On the skewed platform a jump into slot 0 must
    // execute slot 1's word — even when the decode cache was preloaded
    // from the *clean* image, which predecodes slot 0's own word at that
    // address.
    let img = image(
        "\
.ORG 0x30000
    HALT #1
    HALT #2
    HALT #3
    HALT #4
    HALT #5
    HALT #6
    HALT #7
    HALT #8
_main:
    JMP 0x30000
",
    );
    let derivative = Derivative::sc88a();
    let run_with = |fault: PlatformFault, preload: bool| {
        let mut p = Platform::with_fault(PlatformId::GoldenModel, &derivative, fault);
        if preload {
            p.load_prebuilt(&img, &DecodedProgram::from_image(&img));
        } else {
            p.load_image(&img);
        }
        p.run()
    };
    let clean = run_with(PlatformFault::None, true);
    assert_eq!(clean.end, advm_sim::EndReason::Halt(1));
    assert_stats_consistent(&clean);

    for preload in [false, true] {
        let skewed = run_with(PlatformFault::EsDispatchSkewed, preload);
        assert_eq!(
            skewed.end,
            advm_sim::EndReason::Halt(2),
            "skew must redirect the table fetch (preload={preload})"
        );
        assert_stats_consistent(&skewed);
        assert!(
            skewed.decode.misses > 0,
            "the skew bypass counts its re-decodes as misses (preload={preload}): {:?}",
            skewed.decode
        );
    }
}

#[test]
fn decode_stats_reflect_loop_reuse() {
    // A 100-iteration countdown: ~5 distinct words execute ~500 times.
    // The cache must serve the overwhelming majority from hits.
    let img = image(
        "\
_main:
    LOAD d1, #100
loop:
    SUB d1, d1, #1
    CMP d1, #0
    JNE loop
    HALT #0
",
    );
    let result = run_all_modes(&img);
    assert!(
        result.decode.hits > 10 * result.decode.misses,
        "loop fetches must hit: {:?}",
        result.decode
    );
    assert!(result.decode.hit_rate() > 0.9, "{:?}", result.decode);
    // The countdown body (SUB / CMP / JNE) is one straight-line
    // superblock: the default platform must run it as block dispatches.
    assert!(
        result.decode.blocks_built > 0,
        "loop body must form a superblock: {:?}",
        result.decode
    );
    assert!(
        result.decode.block_dispatches > result.decode.blocks_built,
        "a hot loop re-dispatches its block: {:?}",
        result.decode
    );
}

#[test]
fn preloaded_artifact_starts_hot() {
    let img = image("_main:\n    NOP\n    NOP\n    HALT #0\n");
    let decoded = DecodedProgram::from_image(&img);
    assert_eq!(decoded.words(), 3);
    let derivative = Derivative::sc88a();
    let mut platform = Platform::new(PlatformId::GoldenModel, &derivative);
    platform.load_prebuilt(&img, &decoded);
    let result = platform.run();
    assert_eq!(result.decode.misses, 0, "{:?}", result.decode);
    assert_eq!(result.decode.preloaded, 3);
    assert_eq!(result.decode.hits, result.insns);
    assert_stats_consistent(&result);
}
