//! Superblock dispatch is a pure performance tier: block-mode execution
//! must be architecturally indistinguishable from per-instruction
//! predecoded execution — same digest at every retired-instruction
//! count, same end reason, same console/UART bytes — on every platform,
//! self-modifying code included.
//!
//! The sampling mirrors `bisect_divergence`: instead of stepping in
//! lockstep, fresh machines run to a set of retired-count probes and
//! compare [`Platform::state_digest`] (the architectural, timing-free
//! FNV over registers, RAM, NVM and observable peripheral state) at
//! each.

use advm_asm::{assemble_str, Image};
use advm_sim::{DecodedProgram, Platform, RunResult};
use advm_soc::{Derivative, PlatformId};
use proptest::prelude::*;

fn image(asm: &str) -> Image {
    let program = assemble_str(asm).unwrap_or_else(|e| panic!("{e}"));
    let mut image = Image::new();
    image.load_program(&program).unwrap();
    image
}

/// Fresh predecoded platform with the block tier switched `blocks`,
/// capped at `fuel` retired instructions, run to completion.
fn run_mode(img: &Image, id: PlatformId, blocks: bool, fuel: u64) -> (Platform, RunResult) {
    let derivative = Derivative::sc88a();
    let mut p = Platform::new(id, &derivative);
    p.set_superblocks(blocks);
    p.load_prebuilt(img, &DecodedProgram::from_image(img));
    p.set_fuel(fuel);
    let result = p.run();
    (p, result)
}

/// Runs `img` on `id` in both modes and compares digests at a spread of
/// retired-count probes (bisect-style: ends, midpoint, and the first
/// few counts, where a block/per-insn boundary bug would bite first).
fn assert_equivalent_on(img: &Image, id: PlatformId) {
    let (_, full) = run_mode(img, id, true, u64::MAX);
    let (_, scalar) = run_mode(img, id, false, u64::MAX);
    assert_eq!(full.end, scalar.end, "{id:?}");
    assert_eq!(full.insns, scalar.insns, "{id:?}");
    assert_eq!(full.cycles, scalar.cycles, "{id:?}");
    assert_eq!(full.console, scalar.console, "{id:?}");
    assert_eq!(full.uart_tx, scalar.uart_tx, "{id:?}");

    let total = full.insns;
    let probes = [
        0,
        1,
        2,
        3,
        total / 4,
        total / 2,
        total.saturating_sub(1),
        total,
    ];
    for &k in &probes {
        let (blocked, rb) = run_mode(img, id, true, k);
        let (plain, rp) = run_mode(img, id, false, k);
        assert_eq!(
            rb.insns, rp.insns,
            "{id:?}: retired counts diverge at fuel {k}"
        );
        assert_eq!(
            blocked.state_digest(),
            plain.state_digest(),
            "{id:?}: architectural state diverges at {} retired",
            rb.insns
        );
    }
}

/// Register, RAM, peripheral and loop churn — straight-line runs long
/// enough to form superblocks, plus calls and MMIO to break them.
fn busy_program() -> Image {
    image(
        "\
_main:
    LOAD d1, #0xDEADBEEF
    STORE [0x40100], d1
    LOAD d2, [0x40100]
    MOVI d14, #0
    INSERT d14, d14, #3, 0, 5
    ORI d14, d14, #0x100
    STORE [0xE0100], d14
    LOAD d3, [0xE0104]
    LOAD d4, #25
loop:
    XOR d6, d6, d4
    SHL d7, d6, #1
    SUB d4, d4, #1
    CMP d4, #0
    JNE loop
    CALL leaf
    LOAD d5, #0x600D0000
    STORE [0xEFF00], d5
    STORE [0xEFF08], d5
    HALT #0
leaf:
    ADD d8, d6, d7
    NOT d9, d8
    RETURN
",
    )
}

/// Copies a routine into RAM, executes it, rewrites it in place and
/// executes it again — the invalidation path must tear down any block
/// built over the old bytes in both modes identically.
fn self_modifying_program() -> Image {
    let movi5 = advm_isa::encode(&advm_isa::Insn::MovI {
        rd: advm_isa::DataReg::D5,
        imm: 5,
    });
    let movi6 = advm_isa::encode(&advm_isa::Insn::MovI {
        rd: advm_isa::DataReg::D5,
        imm: 6,
    });
    let xor = advm_isa::encode(&advm_isa::Insn::Xor {
        rd: advm_isa::DataReg::D6,
        ra: advm_isa::DataReg::D6,
        rb: advm_isa::DataReg::D5,
    });
    let ret = advm_isa::encode(&advm_isa::Insn::Ret);
    image(&format!(
        "\
RAM_CODE .EQU 0x50000
_main:
    LOAD a4, #RAM_CODE
    LOAD d1, #0x{movi5:X}
    STORE [a4], d1
    LOAD d1, #0x{xor:X}
    STORE [a4 + 4], d1
    LOAD d1, #0x{ret:X}
    STORE [a4 + 8], d1
    LOAD d9, #8
again:
    CALL a4
    LOAD d1, #0x{movi6:X}
    STORE [a4], d1           ; rewrite the first word each iteration
    LOAD d1, #0x{movi5:X}
    STORE [a4 + 4], d1       ; ... and turn the XOR into a MOVI too
    SUB d9, d9, #1
    CMP d9, #0
    JNE again
    HALT #0
"
    ))
}

#[test]
fn block_mode_is_architecturally_identical_on_every_platform() {
    let img = busy_program();
    for &id in PlatformId::ALL.iter() {
        assert_equivalent_on(&img, id);
    }
}

#[test]
fn self_modifying_code_is_identical_in_both_modes_on_every_platform() {
    let img = self_modifying_program();
    for &id in PlatformId::ALL.iter() {
        assert_equivalent_on(&img, id);
    }
}

/// One strategy instruction: a superblock-eligible ALU op with
/// proptest-chosen registers and immediates.
fn alu_line(op: u8, rd: u8, ra: u8, imm: i16) -> String {
    let rd = rd % 14; // keep d14/d15 for the epilogue
    let ra = ra % 14;
    match op % 6 {
        0 => format!("    MOVI d{rd}, #{}", imm.unsigned_abs()),
        1 => format!("    ADD d{rd}, d{rd}, d{ra}"),
        2 => format!("    SUB d{rd}, d{rd}, d{ra}"),
        3 => format!("    XOR d{rd}, d{rd}, d{ra}"),
        4 => format!("    SHL d{rd}, d{ra}, #{}", imm.unsigned_abs() % 31),
        _ => format!("    NOT d{rd}, d{ra}"),
    }
}

proptest! {
    // Each case runs 2 × (probes + 1) machines; a handful of cases keep
    // the property meaningful without dominating suite runtime.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random straight-line ALU programs — the superblock sweet spot —
    /// digest identically in both modes at every sampled fuel on the
    /// golden model and the RTL sim.
    #[test]
    fn random_straight_line_programs_digest_identically(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>()), 1..80),
    ) {
        let body: Vec<String> = ops
            .iter()
            .map(|&(op, rd, ra, imm)| alu_line(op, rd, ra, imm))
            .collect();
        let img = image(&format!("_main:\n{}\n    HALT #0\n", body.join("\n")));
        for id in [PlatformId::GoldenModel, PlatformId::RtlSim] {
            let (_, full) = run_mode(&img, id, true, u64::MAX);
            let (_, scalar) = run_mode(&img, id, false, u64::MAX);
            prop_assert_eq!(full.end, scalar.end);
            prop_assert_eq!(full.insns, scalar.insns);
            prop_assert_eq!(full.cycles, scalar.cycles);
            for k in [1, ops.len() as u64 / 2, ops.len() as u64] {
                let (blocked, rb) = run_mode(&img, id, true, k);
                let (plain, rp) = run_mode(&img, id, false, k);
                prop_assert_eq!(rb.insns, rp.insns);
                prop_assert_eq!(
                    blocked.state_digest(),
                    plain.state_digest(),
                    "diverged at {} retired on {:?}",
                    rb.insns,
                    id
                );
            }
        }
    }
}
