//! Chip derivatives as first-class objects.
//!
//! §4 of the paper walks through the concrete change classes a derivative
//! (or a specification revision) can bring:
//!
//! * control bits **shifted** within a register ("the location of these
//!   control bits have been shifted by one"),
//! * a control field **widened** ("capable of handling more pages …
//!   the page control field size has increased by one bit"),
//! * a register **renamed** ("a register name has been changed for a new
//!   derivative"),
//! * embedded software **revised** ("re-written in such a way that the
//!   input registers have been swapped around", Figure 7),
//!
//! plus, implicitly, peripheral relocation between family members. Each is
//! a [`ChangeOp`]; a [`Derivative`] is the base chip plus a list of ops.
//! Applying the ops to the base register map yields the derivative's map,
//! from which `Globals.inc` is generated — so the experiments can measure
//! exactly how much of the test environment each change class touches.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::es::EsVersion;
use crate::regmap::{Access, Field, Module, RegMap, RegMapError, Register};
use crate::testbench::Mailbox;

/// Identifier of a catalogued SC88 derivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DerivativeId {
    /// SC88-A: the base chip.
    Sc88A,
    /// SC88-B: specification revision — the page field moved up one bit.
    Sc88B,
    /// SC88-C: more pages — the page field widened from 5 to 6 bits.
    Sc88C,
    /// SC88-D: register renamed, UART relocated, embedded software v2.
    Sc88D,
}

impl DerivativeId {
    /// All catalogued derivatives, base first.
    pub const ALL: [DerivativeId; 4] = [
        DerivativeId::Sc88A,
        DerivativeId::Sc88B,
        DerivativeId::Sc88C,
        DerivativeId::Sc88D,
    ];

    /// Numeric code published to tests via `DERIVATIVE_ID`.
    pub fn code(self) -> u32 {
        match self {
            DerivativeId::Sc88A => 0xA,
            DerivativeId::Sc88B => 0xB,
            DerivativeId::Sc88C => 0xC,
            DerivativeId::Sc88D => 0xD,
        }
    }

    /// Marketing-style name.
    pub fn name(self) -> &'static str {
        match self {
            DerivativeId::Sc88A => "SC88-A",
            DerivativeId::Sc88B => "SC88-B",
            DerivativeId::Sc88C => "SC88-C",
            DerivativeId::Sc88D => "SC88-D",
        }
    }
}

impl fmt::Display for DerivativeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One atomic change a derivative applies to the base register map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeOp {
    /// Move a field to a new bit position (same width).
    MoveField {
        /// Module name.
        module: String,
        /// Register name (base-map name).
        register: String,
        /// Field name.
        field: String,
        /// New least-significant bit position.
        new_pos: u8,
    },
    /// Resize a field in place (same position).
    ResizeField {
        /// Module name.
        module: String,
        /// Register name (base-map name).
        register: String,
        /// Field name.
        field: String,
        /// New width in bits.
        new_width: u8,
    },
    /// Rename a register.
    RenameRegister {
        /// Module name.
        module: String,
        /// Old register name.
        old: String,
        /// New register name.
        new: String,
    },
    /// Move a module to a new base address.
    RelocateModule {
        /// Module name.
        module: String,
        /// New base byte address.
        new_base: u32,
    },
}

impl ChangeOp {
    /// Applies this change to a register map.
    ///
    /// # Errors
    ///
    /// Propagates [`RegMapError`] if the change names an unknown entity or
    /// would create overlapping fields/registers/modules.
    pub fn apply(&self, map: &mut RegMap) -> Result<(), RegMapError> {
        match self {
            ChangeOp::MoveField {
                module,
                register,
                field,
                new_pos,
            } => map.module_mut(module)?.update_field(register, field, |f| {
                Field::new(f.name(), *new_pos, f.width())
            }),
            ChangeOp::ResizeField {
                module,
                register,
                field,
                new_width,
            } => map.module_mut(module)?.update_field(register, field, |f| {
                Field::new(f.name(), f.pos(), *new_width)
            }),
            ChangeOp::RenameRegister { module, old, new } => {
                map.module_mut(module)?.rename_register(old, new)
            }
            ChangeOp::RelocateModule { module, new_base } => map.relocate_module(module, *new_base),
        }
    }

    /// One-line description for change logs and experiment tables.
    pub fn describe(&self) -> String {
        match self {
            ChangeOp::MoveField {
                module,
                register,
                field,
                new_pos,
            } => {
                format!("move field {module}.{register}.{field} to bit {new_pos}")
            }
            ChangeOp::ResizeField {
                module,
                register,
                field,
                new_width,
            } => {
                format!("resize field {module}.{register}.{field} to {new_width} bits")
            }
            ChangeOp::RenameRegister { module, old, new } => {
                format!("rename register {module}.{old} to {new}")
            }
            ChangeOp::RelocateModule { module, new_base } => {
                format!("relocate module {module} to {new_base:#x}")
            }
        }
    }
}

impl fmt::Display for ChangeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A chip derivative: the base map plus a change list and an
/// embedded-software version.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Derivative {
    id: DerivativeId,
    changes: Vec<ChangeOp>,
    es_version: EsVersion,
    /// Register names that were renamed: (abstraction-layer name, actual
    /// hardware name on this derivative). The `Globals.inc` generator uses
    /// this to keep the *define* name stable while pointing at the renamed
    /// register — the paper's "re-map them using the Global Defines file".
    renames: Vec<(String, String)>,
}

impl Derivative {
    /// The base chip, SC88-A: no changes, embedded software v1.
    pub fn sc88a() -> Self {
        Self {
            id: DerivativeId::Sc88A,
            changes: Vec::new(),
            es_version: EsVersion::V1,
            renames: Vec::new(),
        }
    }

    /// SC88-B: the paper's *specification change* — "the location of these
    /// control bits have been shifted by one". The page field (and its
    /// read-back twin) move from bit 0 to bit 1.
    pub fn sc88b() -> Self {
        Self {
            id: DerivativeId::Sc88B,
            changes: vec![
                ChangeOp::MoveField {
                    module: "PAGE".into(),
                    register: "PAGE_CTRL".into(),
                    field: "PAGE".into(),
                    new_pos: 1,
                },
                ChangeOp::MoveField {
                    module: "PAGE".into(),
                    register: "PAGE_STATUS".into(),
                    field: "ACTIVE_PAGE".into(),
                    new_pos: 1,
                },
            ],
            es_version: EsVersion::V1,
            renames: Vec::new(),
        }
    }

    /// SC88-C: the paper's *derivative change* — "this version of the
    /// module is now capable of handling more pages … the page control
    /// field size has increased by one bit" (5 → 6 bits, 32 → 64 pages).
    pub fn sc88c() -> Self {
        Self {
            id: DerivativeId::Sc88C,
            changes: vec![
                ChangeOp::ResizeField {
                    module: "PAGE".into(),
                    register: "PAGE_CTRL".into(),
                    field: "PAGE".into(),
                    new_width: 6,
                },
                ChangeOp::ResizeField {
                    module: "PAGE".into(),
                    register: "PAGE_STATUS".into(),
                    field: "ACTIVE_PAGE".into(),
                    new_width: 6,
                },
            ],
            es_version: EsVersion::V1,
            renames: Vec::new(),
        }
    }

    /// SC88-D: the compound derivative — `PAGE_CTRL` renamed to
    /// `PAGE_CONF` (the paper's "register name has been changed for a new
    /// derivative"), the UART relocated, and the embedded software
    /// re-released as v2 with swapped input registers (Figure 7).
    pub fn sc88d() -> Self {
        Self {
            id: DerivativeId::Sc88D,
            changes: vec![
                ChangeOp::RenameRegister {
                    module: "PAGE".into(),
                    old: "PAGE_CTRL".into(),
                    new: "PAGE_CONF".into(),
                },
                ChangeOp::RelocateModule {
                    module: "UART".into(),
                    new_base: 0xE_0800,
                },
            ],
            es_version: EsVersion::V2,
            renames: vec![("PAGE_CTRL".to_owned(), "PAGE_CONF".to_owned())],
        }
    }

    /// Looks up a catalogued derivative by id.
    pub fn from_id(id: DerivativeId) -> Self {
        match id {
            DerivativeId::Sc88A => Self::sc88a(),
            DerivativeId::Sc88B => Self::sc88b(),
            DerivativeId::Sc88C => Self::sc88c(),
            DerivativeId::Sc88D => Self::sc88d(),
        }
    }

    /// The derivative's identifier.
    pub fn id(&self) -> DerivativeId {
        self.id
    }

    /// The change list relative to the base chip.
    pub fn changes(&self) -> &[ChangeOp] {
        &self.changes
    }

    /// The embedded-software release shipped with this derivative.
    pub fn es_version(&self) -> EsVersion {
        self.es_version
    }

    /// Resolves the hardware register name for an abstraction-layer name
    /// (identity unless the derivative renamed the register).
    pub fn hardware_register_name<'a>(&'a self, abstract_name: &'a str) -> &'a str {
        self.renames
            .iter()
            .find(|(a, _)| a == abstract_name)
            .map(|(_, hw)| hw.as_str())
            .unwrap_or(abstract_name)
    }

    /// The inverse of [`Derivative::hardware_register_name`]: maps a
    /// hardware register name back to the stable abstraction-layer name.
    pub fn abstract_register_name<'a>(&'a self, hardware_name: &'a str) -> &'a str {
        self.renames
            .iter()
            .find(|(_, hw)| hw == hardware_name)
            .map(|(a, _)| a.as_str())
            .unwrap_or(hardware_name)
    }

    /// The derivative's register map: the base map with all changes
    /// applied.
    ///
    /// # Panics
    ///
    /// Panics if a catalogued change list fails to apply — the catalogue
    /// is validated by tests, so this indicates a corrupted `Derivative`
    /// built outside the catalogue.
    pub fn regmap(&self) -> RegMap {
        let mut map = base_regmap();
        for change in &self.changes {
            change
                .apply(&mut map)
                .unwrap_or_else(|e| panic!("{}: change `{}` failed: {e}", self.id, change));
        }
        map
    }

    /// Number of pages the page-mapping module supports (2^width of the
    /// page field).
    pub fn page_count(&self) -> u32 {
        let map = self.regmap();
        let page_ctrl = self.hardware_register_name("PAGE_CTRL");
        let width = map
            .module("PAGE")
            .and_then(|m| m.register(page_ctrl))
            .and_then(|r| r.field("PAGE"))
            .map(|f| f.width())
            .expect("catalogued maps always have PAGE.PAGE_CTRL.PAGE");
        1 << width
    }
}

impl fmt::Display for Derivative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (ES {}, {} changes)",
            self.id,
            self.es_version,
            self.changes.len()
        )
    }
}

/// Builds the SC88-A base register map: every peripheral of the synthetic
/// chip-card SoC.
pub fn base_regmap() -> RegMap {
    // The unwraps below are on statically known-good definitions; the
    // `base_regmap_is_valid` test would catch any regression.
    fn field(name: &str, pos: u8, width: u8) -> Field {
        Field::new(name, pos, width).expect("static field definition")
    }
    fn reg(name: &str, offset: u32, access: Access, reset: u32, fields: Vec<Field>) -> Register {
        let mut r = Register::new(name, offset, access, reset).expect("static register");
        for f in fields {
            r = r.with_field(f).expect("static field set");
        }
        r
    }

    let uart = Module::new("UART", 0xE_0000, 0x100)
        .and_then(|m| {
            m.with_register(reg(
                "CTRL",
                0x00,
                Access::ReadWrite,
                0,
                vec![
                    field("EN", 0, 1),
                    field("PARITY", 1, 2),
                    field("STOP", 3, 1),
                    field("LOOPBACK", 4, 1),
                ],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "STATUS",
                0x04,
                Access::ReadOnly,
                0x1,
                vec![
                    field("TX_READY", 0, 1),
                    field("RX_VALID", 1, 1),
                    field("OVERRUN", 2, 1),
                ],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "DATA",
                0x08,
                Access::ReadWrite,
                0,
                vec![field("DATA", 0, 8)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "BAUD",
                0x0C,
                Access::ReadWrite,
                0x10,
                vec![field("DIV", 0, 16)],
            ))
        })
        .expect("static UART module");

    let page = Module::new("PAGE", 0xE_0100, 0x100)
        .and_then(|m| {
            m.with_register(reg(
                "PAGE_CTRL",
                0x00,
                Access::ReadWrite,
                0,
                vec![
                    field("PAGE", 0, 5),
                    field("ENABLE", 8, 1),
                    field("MODE", 9, 2),
                ],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "PAGE_STATUS",
                0x04,
                Access::ReadOnly,
                0x100,
                vec![field("ACTIVE_PAGE", 0, 5), field("READY", 8, 1)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "PAGE_MAP",
                0x08,
                Access::ReadWrite,
                0,
                vec![field("BASE", 0, 16)],
            ))
        })
        .and_then(|m| {
            // The mapped window base: `selected_page * 0x100`. Unlike
            // PAGE_STATUS (whose layout mirrors PAGE_CTRL and therefore
            // moves with the field geometry), this is a *semantic*
            // observable — a test that programmed the wrong bits reads a
            // wrong window here on every derivative.
            m.with_register(reg(
                "PAGE_WINDOW",
                0x0C,
                Access::ReadOnly,
                0,
                vec![field("BASE", 0, 16)],
            ))
        })
        .expect("static PAGE module");

    let timer = Module::new("TIMER", 0xE_0200, 0x100)
        .and_then(|m| {
            m.with_register(reg(
                "CTRL",
                0x00,
                Access::ReadWrite,
                0,
                vec![
                    field("EN", 0, 1),
                    field("IE", 1, 1),
                    field("PERIODIC", 2, 1),
                ],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "LOAD",
                0x04,
                Access::ReadWrite,
                0,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "VALUE",
                0x08,
                Access::ReadOnly,
                0,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "STATUS",
                0x0C,
                Access::ReadWrite,
                0,
                vec![field("EXPIRED", 0, 1)],
            ))
        })
        .expect("static TIMER module");

    let intc = Module::new("INTC", 0xE_0300, 0x100)
        .and_then(|m| {
            m.with_register(reg(
                "ENABLE",
                0x00,
                Access::ReadWrite,
                0,
                vec![field("LINES", 0, 16)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "PENDING",
                0x04,
                Access::ReadOnly,
                0,
                vec![field("LINES", 0, 16)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "ACK",
                0x08,
                Access::WriteOnly,
                0,
                vec![field("LINE", 0, 4)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "RAISE",
                0x0C,
                Access::WriteOnly,
                0,
                vec![field("LINE", 0, 4)],
            ))
        })
        .expect("static INTC module");

    let wdt = Module::new("WDT", 0xE_0400, 0x100)
        .and_then(|m| {
            m.with_register(reg(
                "CTRL",
                0x00,
                Access::ReadWrite,
                0,
                vec![field("EN", 0, 1)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "SERVICE",
                0x04,
                Access::WriteOnly,
                0,
                vec![field("KEY", 0, 8)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "PERIOD",
                0x08,
                Access::ReadWrite,
                0x1_0000,
                vec![field("CYCLES", 0, 24)],
            ))
        })
        .expect("static WDT module");

    let nvmc = Module::new("NVMC", 0xE_0500, 0x100)
        .and_then(|m| {
            m.with_register(reg(
                "KEY",
                0x00,
                Access::WriteOnly,
                0,
                vec![field("KEY", 0, 8)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "CTRL",
                0x04,
                Access::ReadWrite,
                0,
                vec![field("WE", 0, 1), field("ERASE", 1, 1)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "ADDR",
                0x08,
                Access::ReadWrite,
                0,
                vec![field("ADDR", 0, 20)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "DATA",
                0x0C,
                Access::ReadWrite,
                0,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "STATUS",
                0x10,
                Access::ReadOnly,
                0,
                vec![
                    field("BUSY", 0, 1),
                    field("UNLOCKED", 1, 1),
                    field("ERROR", 2, 1),
                ],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "CMD",
                0x14,
                Access::WriteOnly,
                0,
                vec![field("CMD", 0, 2)],
            ))
        })
        .expect("static NVMC module");

    let crc = Module::new("CRC", 0xE_0600, 0x100)
        .and_then(|m| {
            m.with_register(reg(
                "CTRL",
                0x00,
                Access::ReadWrite,
                0,
                vec![field("EN", 0, 1), field("INIT", 1, 1)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "DATA_IN",
                0x04,
                Access::WriteOnly,
                0,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "RESULT",
                0x08,
                Access::ReadOnly,
                0xFFFF_FFFF,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .expect("static CRC module");

    let tb = Module::new("TB", Mailbox::BASE, 0x100)
        .and_then(|m| {
            m.with_register(reg(
                "RESULT",
                Mailbox::RESULT,
                Access::WriteOnly,
                0,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "CHAROUT",
                Mailbox::CHAROUT,
                Access::WriteOnly,
                0,
                vec![field("CHAR", 0, 8)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "SIM_END",
                Mailbox::SIM_END,
                Access::WriteOnly,
                0,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "TICKS",
                Mailbox::TICKS,
                Access::ReadOnly,
                0,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "PLATFORM",
                Mailbox::PLATFORM,
                Access::ReadOnly,
                0,
                vec![field("ID", 0, 8)],
            ))
        })
        .and_then(|m| {
            m.with_register(reg(
                "SCRATCH",
                Mailbox::SCRATCH,
                Access::ReadWrite,
                0,
                vec![field("VALUE", 0, 32)],
            ))
        })
        .expect("static TB module");

    RegMap::new()
        .with_module(uart)
        .and_then(|m| m.with_module(page))
        .and_then(|m| m.with_module(timer))
        .and_then(|m| m.with_module(intc))
        .and_then(|m| m.with_module(wdt))
        .and_then(|m| m.with_module(nvmc))
        .and_then(|m| m.with_module(crc))
        .and_then(|m| m.with_module(tb))
        .expect("static SC88 register map")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_regmap_is_valid() {
        let map = base_regmap();
        assert_eq!(map.modules().len(), 8);
        for name in ["UART", "PAGE", "TIMER", "INTC", "WDT", "NVMC", "CRC", "TB"] {
            assert!(map.module(name).is_some(), "missing module {name}");
        }
    }

    #[test]
    fn all_derivatives_produce_valid_maps() {
        for id in DerivativeId::ALL {
            let d = Derivative::from_id(id);
            let map = d.regmap();
            assert!(!map.modules().is_empty(), "{id}");
        }
    }

    #[test]
    fn sc88b_moves_page_field() {
        let map = Derivative::sc88b().regmap();
        let f = map
            .module("PAGE")
            .unwrap()
            .register("PAGE_CTRL")
            .unwrap()
            .field("PAGE")
            .unwrap();
        assert_eq!((f.pos(), f.width()), (1, 5));
    }

    #[test]
    fn sc88c_widens_page_field_and_doubles_pages() {
        let c = Derivative::sc88c();
        let map = c.regmap();
        let f = map
            .module("PAGE")
            .unwrap()
            .register("PAGE_CTRL")
            .unwrap()
            .field("PAGE")
            .unwrap();
        assert_eq!((f.pos(), f.width()), (0, 6));
        assert_eq!(c.page_count(), 64);
        assert_eq!(Derivative::sc88a().page_count(), 32);
    }

    #[test]
    fn sc88d_renames_and_relocates() {
        let d = Derivative::sc88d();
        let map = d.regmap();
        let page = map.module("PAGE").unwrap();
        assert!(page.register("PAGE_CTRL").is_none());
        assert!(page.register("PAGE_CONF").is_some());
        assert_eq!(map.module("UART").unwrap().base(), 0xE_0800);
        assert_eq!(d.es_version(), EsVersion::V2);
        assert_eq!(d.hardware_register_name("PAGE_CTRL"), "PAGE_CONF");
        assert_eq!(d.hardware_register_name("PAGE_STATUS"), "PAGE_STATUS");
    }

    #[test]
    fn derivative_codes_distinct() {
        let mut codes: Vec<u32> = DerivativeId::ALL.iter().map(|d| d.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), DerivativeId::ALL.len());
    }

    #[test]
    fn change_op_describe() {
        let op = ChangeOp::ResizeField {
            module: "PAGE".into(),
            register: "PAGE_CTRL".into(),
            field: "PAGE".into(),
            new_width: 6,
        };
        assert!(op.describe().contains("6 bits"));
    }

    #[test]
    fn bad_change_reports_error() {
        let mut map = base_regmap();
        let op = ChangeOp::RenameRegister {
            module: "PAGE".into(),
            old: "NO_SUCH".into(),
            new: "X".into(),
        };
        assert!(op.apply(&mut map).is_err());
    }
}
