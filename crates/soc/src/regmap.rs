//! Register-map modelling: modules, registers and named bit-fields.
//!
//! This is the machine-readable form of the "Global Control & Status
//! Register Definitions" that the paper places in the global layer
//! (Figure 1). Derivatives transform these maps; the abstraction layer's
//! `Globals.inc` is generated from them.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Register access rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Access {
    /// Readable and writable.
    ReadWrite,
    /// Read-only (writes are ignored by hardware).
    ReadOnly,
    /// Write-only (reads return zero).
    WriteOnly,
}

impl Access {
    /// Whether a bus read is architecturally meaningful.
    pub fn readable(self) -> bool {
        !matches!(self, Access::WriteOnly)
    }

    /// Whether a bus write has an architectural effect.
    pub fn writable(self) -> bool {
        !matches!(self, Access::ReadOnly)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Access::ReadWrite => "RW",
            Access::ReadOnly => "RO",
            Access::WriteOnly => "WO",
        })
    }
}

/// A named bit-field within a 32-bit register.
///
/// The paper's Figure 6 manipulates exactly such a field: the `PAGE` field
/// whose `pos`/`width` become `PAGE_FIELD_START_POSITION` /
/// `PAGE_FIELD_SIZE` in `Globals.inc`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    name: String,
    pos: u8,
    width: u8,
}

impl Field {
    /// Creates a field.
    ///
    /// # Errors
    ///
    /// Fails if the field does not fit in a 32-bit register.
    pub fn new(name: impl Into<String>, pos: u8, width: u8) -> Result<Self, RegMapError> {
        let name = name.into();
        if width == 0 || width > 32 || pos > 31 || u32::from(pos) + u32::from(width) > 32 {
            return Err(RegMapError::BadField {
                field: name,
                pos,
                width,
            });
        }
        Ok(Self { name, pos, width })
    }

    /// The field's name (unique within its register).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bit position of the least-significant bit.
    pub fn pos(&self) -> u8 {
        self.pos
    }

    /// Width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The field's bit mask in register position.
    pub fn mask(&self) -> u32 {
        self.value_mask() << self.pos
    }

    /// Mask for a field value before shifting (low `width` bits).
    pub fn value_mask(&self) -> u32 {
        if self.width == 32 {
            u32::MAX
        } else {
            (1 << self.width) - 1
        }
    }

    /// The largest value the field can hold.
    pub fn max_value(&self) -> u32 {
        self.value_mask()
    }

    /// Extracts this field's value from a register word.
    pub fn extract(&self, word: u32) -> u32 {
        (word >> self.pos) & self.value_mask()
    }

    /// Returns `word` with this field replaced by `value` (masked to width).
    pub fn insert(&self, word: u32, value: u32) -> u32 {
        (word & !self.mask()) | ((value & self.value_mask()) << self.pos)
    }

    fn overlaps(&self, other: &Field) -> bool {
        self.mask() & other.mask() != 0
    }
}

/// A 32-bit register within a module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Register {
    name: String,
    offset: u32,
    access: Access,
    reset: u32,
    fields: Vec<Field>,
}

impl Register {
    /// Creates a register with no fields.
    ///
    /// # Errors
    ///
    /// Fails if `offset` is not word aligned.
    pub fn new(
        name: impl Into<String>,
        offset: u32,
        access: Access,
        reset: u32,
    ) -> Result<Self, RegMapError> {
        let name = name.into();
        if !offset.is_multiple_of(4) {
            return Err(RegMapError::MisalignedRegister {
                register: name,
                offset,
            });
        }
        Ok(Self {
            name,
            offset,
            access,
            reset,
            fields: Vec::new(),
        })
    }

    /// Adds a field, builder style.
    ///
    /// # Errors
    ///
    /// Fails if the field overlaps an existing field or duplicates a name.
    pub fn with_field(mut self, field: Field) -> Result<Self, RegMapError> {
        if self.fields.iter().any(|f| f.name == field.name) {
            return Err(RegMapError::DuplicateName {
                kind: "field",
                name: format!("{}.{}", self.name, field.name),
            });
        }
        if let Some(clash) = self.fields.iter().find(|f| f.overlaps(&field)) {
            return Err(RegMapError::OverlappingFields {
                register: self.name.clone(),
                first: clash.name.clone(),
                second: field.name,
            });
        }
        self.fields.push(field);
        Ok(self)
    }

    /// The register's name (unique within its module).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Byte offset from the module base.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// Access rights.
    pub fn access(&self) -> Access {
        self.access
    }

    /// Architectural reset value.
    pub fn reset(&self) -> u32 {
        self.reset
    }

    /// The register's fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A hardware module (peripheral) with a base address and registers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    name: String,
    base: u32,
    size: u32,
    registers: Vec<Register>,
}

impl Module {
    /// Creates an empty module claiming `size` bytes from `base`.
    ///
    /// # Errors
    ///
    /// Fails if the base is not word aligned or the size is zero.
    pub fn new(name: impl Into<String>, base: u32, size: u32) -> Result<Self, RegMapError> {
        let name = name.into();
        if !base.is_multiple_of(4) || size == 0 {
            return Err(RegMapError::BadModule {
                module: name,
                base,
                size,
            });
        }
        Ok(Self {
            name,
            base,
            size,
            registers: Vec::new(),
        })
    }

    /// Adds a register, builder style.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, duplicate offsets, or offsets outside the
    /// module's claimed size.
    pub fn with_register(mut self, register: Register) -> Result<Self, RegMapError> {
        if register.offset + 4 > self.size {
            return Err(RegMapError::RegisterOutsideModule {
                module: self.name,
                register: register.name,
            });
        }
        if self.registers.iter().any(|r| r.name == register.name) {
            return Err(RegMapError::DuplicateName {
                kind: "register",
                name: format!("{}.{}", self.name, register.name),
            });
        }
        if let Some(clash) = self.registers.iter().find(|r| r.offset == register.offset) {
            return Err(RegMapError::OverlappingRegisters {
                module: self.name.clone(),
                first: clash.name.clone(),
                second: register.name,
            });
        }
        self.registers.push(register);
        Ok(self)
    }

    /// The module name (unique within the map).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Base byte address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Claimed address-space size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Registers in declaration order.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// Looks up a register by name.
    pub fn register(&self, name: &str) -> Option<&Register> {
        self.registers.iter().find(|r| r.name == name)
    }

    /// The absolute byte address of a register.
    pub fn register_addr(&self, name: &str) -> Option<u32> {
        self.register(name).map(|r| self.base + r.offset)
    }

    /// Whether `addr` falls inside this module's claimed range.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.base + self.size
    }

    fn overlaps(&self, other: &Module) -> bool {
        self.base < other.base + other.size && other.base < self.base + self.size
    }

    pub(crate) fn rename_register(&mut self, old: &str, new: &str) -> Result<(), RegMapError> {
        if self.registers.iter().any(|r| r.name == new) {
            return Err(RegMapError::DuplicateName {
                kind: "register",
                name: format!("{}.{new}", self.name),
            });
        }
        let reg = self
            .registers
            .iter_mut()
            .find(|r| r.name == old)
            .ok_or_else(|| RegMapError::UnknownRegister {
                module: self.name.clone(),
                register: old.to_owned(),
            })?;
        reg.name = new.to_owned();
        Ok(())
    }

    pub(crate) fn update_field<F>(
        &mut self,
        register: &str,
        field: &str,
        update: F,
    ) -> Result<(), RegMapError>
    where
        F: FnOnce(&Field) -> Result<Field, RegMapError>,
    {
        let module_name = self.name.clone();
        let reg = self
            .registers
            .iter_mut()
            .find(|r| r.name == register)
            .ok_or_else(|| RegMapError::UnknownRegister {
                module: module_name,
                register: register.to_owned(),
            })?;
        let idx = reg
            .fields
            .iter()
            .position(|f| f.name == field)
            .ok_or_else(|| RegMapError::UnknownField {
                register: register.to_owned(),
                field: field.to_owned(),
            })?;
        let updated = update(&reg.fields[idx])?;
        // Re-check overlap against the *other* fields.
        if let Some(clash) = reg
            .fields
            .iter()
            .enumerate()
            .find(|(i, f)| *i != idx && f.overlaps(&updated))
        {
            return Err(RegMapError::OverlappingFields {
                register: reg.name.clone(),
                first: clash.1.name.clone(),
                second: updated.name,
            });
        }
        reg.fields[idx] = updated;
        Ok(())
    }
}

/// A complete register map: every module of one chip derivative.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegMap {
    modules: Vec<Module>,
}

impl RegMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a module, builder style.
    ///
    /// # Errors
    ///
    /// Fails if the module's address range overlaps an existing module or
    /// duplicates a name.
    pub fn with_module(mut self, module: Module) -> Result<Self, RegMapError> {
        if self.modules.iter().any(|m| m.name == module.name) {
            return Err(RegMapError::DuplicateName {
                kind: "module",
                name: module.name,
            });
        }
        if let Some(clash) = self.modules.iter().find(|m| m.overlaps(&module)) {
            return Err(RegMapError::OverlappingModules {
                first: clash.name.clone(),
                second: module.name,
            });
        }
        self.modules.push(module);
        Ok(self)
    }

    /// Modules in declaration order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    pub(crate) fn module_mut(&mut self, name: &str) -> Result<&mut Module, RegMapError> {
        self.modules
            .iter_mut()
            .find(|m| m.name == name)
            .ok_or_else(|| RegMapError::UnknownModule {
                module: name.to_owned(),
            })
    }

    /// Finds the module containing `addr`, if any.
    pub fn module_at(&self, addr: u32) -> Option<&Module> {
        self.modules.iter().find(|m| m.contains(addr))
    }

    pub(crate) fn relocate_module(&mut self, name: &str, new_base: u32) -> Result<(), RegMapError> {
        if !new_base.is_multiple_of(4) {
            return Err(RegMapError::BadModule {
                module: name.to_owned(),
                base: new_base,
                size: 1,
            });
        }
        let idx = self
            .modules
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| RegMapError::UnknownModule {
                module: name.to_owned(),
            })?;
        let mut moved = self.modules[idx].clone();
        moved.base = new_base;
        if let Some(clash) = self
            .modules
            .iter()
            .enumerate()
            .find(|(i, m)| *i != idx && m.overlaps(&moved))
        {
            return Err(RegMapError::OverlappingModules {
                first: clash.1.name.clone(),
                second: moved.name,
            });
        }
        self.modules[idx] = moved;
        Ok(())
    }
}

/// Errors arising while constructing or transforming register maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegMapError {
    /// A field does not fit in a 32-bit register.
    BadField {
        /// Field name.
        field: String,
        /// Offending position.
        pos: u8,
        /// Offending width.
        width: u8,
    },
    /// A register offset is not word aligned.
    MisalignedRegister {
        /// Register name.
        register: String,
        /// Offending offset.
        offset: u32,
    },
    /// A module base/size is invalid.
    BadModule {
        /// Module name.
        module: String,
        /// Offending base.
        base: u32,
        /// Offending size.
        size: u32,
    },
    /// Register placed outside its module's claimed range.
    RegisterOutsideModule {
        /// Module name.
        module: String,
        /// Register name.
        register: String,
    },
    /// Two named entities collide.
    DuplicateName {
        /// Entity kind ("module", "register", "field").
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// Two fields occupy the same bits.
    OverlappingFields {
        /// Register name.
        register: String,
        /// First field.
        first: String,
        /// Second field.
        second: String,
    },
    /// Two registers share an offset.
    OverlappingRegisters {
        /// Module name.
        module: String,
        /// First register.
        first: String,
        /// Second register.
        second: String,
    },
    /// Two modules' address ranges intersect.
    OverlappingModules {
        /// First module.
        first: String,
        /// Second module.
        second: String,
    },
    /// Named module does not exist.
    UnknownModule {
        /// Module name.
        module: String,
    },
    /// Named register does not exist.
    UnknownRegister {
        /// Module name.
        module: String,
        /// Register name.
        register: String,
    },
    /// Named field does not exist.
    UnknownField {
        /// Register name.
        register: String,
        /// Field name.
        field: String,
    },
}

impl fmt::Display for RegMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegMapError::BadField { field, pos, width } => {
                write!(
                    f,
                    "field `{field}` (pos {pos}, width {width}) does not fit a 32-bit register"
                )
            }
            RegMapError::MisalignedRegister { register, offset } => {
                write!(
                    f,
                    "register `{register}` offset {offset:#x} is not word aligned"
                )
            }
            RegMapError::BadModule { module, base, size } => {
                write!(
                    f,
                    "module `{module}` has invalid base {base:#x} / size {size:#x}"
                )
            }
            RegMapError::RegisterOutsideModule { module, register } => {
                write!(f, "register `{register}` lies outside module `{module}`")
            }
            RegMapError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            RegMapError::OverlappingFields {
                register,
                first,
                second,
            } => {
                write!(
                    f,
                    "fields `{first}` and `{second}` overlap in register `{register}`"
                )
            }
            RegMapError::OverlappingRegisters {
                module,
                first,
                second,
            } => {
                write!(
                    f,
                    "registers `{first}` and `{second}` overlap in module `{module}`"
                )
            }
            RegMapError::OverlappingModules { first, second } => {
                write!(
                    f,
                    "modules `{first}` and `{second}` have overlapping address ranges"
                )
            }
            RegMapError::UnknownModule { module } => write!(f, "unknown module `{module}`"),
            RegMapError::UnknownRegister { module, register } => {
                write!(f, "unknown register `{register}` in module `{module}`")
            }
            RegMapError::UnknownField { register, field } => {
                write!(f, "unknown field `{field}` in register `{register}`")
            }
        }
    }
}

impl std::error::Error for RegMapError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_register() -> Register {
        Register::new("PAGE_CTRL", 0x0, Access::ReadWrite, 0)
            .unwrap()
            .with_field(Field::new("PAGE", 0, 5).unwrap())
            .unwrap()
            .with_field(Field::new("ENABLE", 8, 1).unwrap())
            .unwrap()
    }

    #[test]
    fn field_insert_extract_roundtrip() {
        let field = Field::new("PAGE", 3, 5).unwrap();
        let word = field.insert(0xFFFF_FFFF, 0b10110);
        assert_eq!(field.extract(word), 0b10110);
        // Bits outside the field untouched.
        assert_eq!(word | field.mask(), 0xFFFF_FFFF);
    }

    #[test]
    fn field_insert_masks_value() {
        let field = Field::new("PAGE", 0, 5).unwrap();
        assert_eq!(field.insert(0, 0xFF), 0x1F);
        assert_eq!(field.max_value(), 31);
    }

    #[test]
    fn full_width_field() {
        let field = Field::new("ALL", 0, 32).unwrap();
        assert_eq!(field.mask(), u32::MAX);
        assert_eq!(field.insert(0, 0xDEAD_BEEF), 0xDEAD_BEEF);
    }

    #[test]
    fn bad_fields_rejected() {
        assert!(Field::new("X", 28, 5).is_err());
        assert!(Field::new("X", 0, 0).is_err());
        assert!(Field::new("X", 32, 1).is_err());
    }

    #[test]
    fn overlapping_fields_rejected() {
        let reg = Register::new("R", 0, Access::ReadWrite, 0)
            .unwrap()
            .with_field(Field::new("A", 0, 5).unwrap())
            .unwrap();
        let err = reg.with_field(Field::new("B", 4, 2).unwrap()).unwrap_err();
        assert!(matches!(err, RegMapError::OverlappingFields { .. }));
    }

    #[test]
    fn duplicate_field_names_rejected() {
        let reg = Register::new("R", 0, Access::ReadWrite, 0)
            .unwrap()
            .with_field(Field::new("A", 0, 2).unwrap())
            .unwrap();
        assert!(matches!(
            reg.with_field(Field::new("A", 8, 2).unwrap()),
            Err(RegMapError::DuplicateName { .. })
        ));
    }

    #[test]
    fn module_register_addressing() {
        let module = Module::new("PAGE", 0xE0100, 0x100)
            .unwrap()
            .with_register(page_register())
            .unwrap();
        assert_eq!(module.register_addr("PAGE_CTRL"), Some(0xE0100));
        assert!(module.contains(0xE0100));
        assert!(module.contains(0xE01FF));
        assert!(!module.contains(0xE0200));
    }

    #[test]
    fn register_outside_module_rejected() {
        let module = Module::new("M", 0, 0x8).unwrap();
        let reg = Register::new("R", 0x8, Access::ReadWrite, 0).unwrap();
        assert!(matches!(
            module.with_register(reg),
            Err(RegMapError::RegisterOutsideModule { .. })
        ));
    }

    #[test]
    fn overlapping_modules_rejected() {
        let map = RegMap::new()
            .with_module(Module::new("A", 0x0, 0x100).unwrap())
            .unwrap();
        assert!(matches!(
            map.with_module(Module::new("B", 0x80, 0x100).unwrap()),
            Err(RegMapError::OverlappingModules { .. })
        ));
    }

    #[test]
    fn module_at_finds_owner() {
        let map = RegMap::new()
            .with_module(Module::new("A", 0x0, 0x100).unwrap())
            .unwrap()
            .with_module(Module::new("B", 0x100, 0x100).unwrap())
            .unwrap();
        assert_eq!(map.module_at(0xFF).unwrap().name(), "A");
        assert_eq!(map.module_at(0x100).unwrap().name(), "B");
        assert!(map.module_at(0x200).is_none());
    }

    #[test]
    fn rename_register_works_and_validates() {
        let mut module = Module::new("PAGE", 0xE0100, 0x100)
            .unwrap()
            .with_register(page_register())
            .unwrap();
        module.rename_register("PAGE_CTRL", "PAGE_CONF").unwrap();
        assert!(module.register("PAGE_CONF").is_some());
        assert!(module.register("PAGE_CTRL").is_none());
        assert!(module.rename_register("NOPE", "X").is_err());
    }

    #[test]
    fn update_field_rechecks_overlap() {
        let mut module = Module::new("PAGE", 0xE0100, 0x100)
            .unwrap()
            .with_register(page_register())
            .unwrap();
        // Widen PAGE to 9 bits: would collide with ENABLE at bit 8.
        let err = module
            .update_field("PAGE_CTRL", "PAGE", |f| Field::new(f.name(), f.pos(), 9))
            .unwrap_err();
        assert!(matches!(err, RegMapError::OverlappingFields { .. }));
        // Widen to 6 bits: fine.
        module
            .update_field("PAGE_CTRL", "PAGE", |f| Field::new(f.name(), f.pos(), 6))
            .unwrap();
        assert_eq!(
            module
                .register("PAGE_CTRL")
                .unwrap()
                .field("PAGE")
                .unwrap()
                .width(),
            6
        );
    }

    #[test]
    fn relocate_module_rechecks_overlap() {
        let mut map = RegMap::new()
            .with_module(Module::new("A", 0x0, 0x100).unwrap())
            .unwrap()
            .with_module(Module::new("B", 0x100, 0x100).unwrap())
            .unwrap();
        assert!(matches!(
            map.relocate_module("A", 0x180),
            Err(RegMapError::OverlappingModules { .. })
        ));
        map.relocate_module("A", 0x400).unwrap();
        assert_eq!(map.module("A").unwrap().base(), 0x400);
    }

    #[test]
    fn access_rights() {
        assert!(Access::ReadWrite.readable() && Access::ReadWrite.writable());
        assert!(Access::ReadOnly.readable() && !Access::ReadOnly.writable());
        assert!(!Access::WriteOnly.readable() && Access::WriteOnly.writable());
        assert_eq!(Access::ReadOnly.to_string(), "RO");
    }
}
