//! Generation of the abstraction layer's `Globals.inc`.
//!
//! §2 of the paper: *"Anywhere in the test code that would have previously
//! used a hardwired value will now be referenced in this global defines
//! file. This file should now contain derivative specific information …
//! the control of the test environment can be changed depending on the
//! target simulation platform using the same technique."*
//!
//! [`GlobalsSpec`] captures the two inputs — a [`Derivative`] and a
//! [`PlatformId`] — plus optional per-test target overrides, and renders a
//! complete `Globals.inc`: register addresses (remapped across renames),
//! field geometry (`PAGE_FIELD_START_POSITION`, `PAGE_FIELD_SIZE`),
//! platform knobs (`WDT_DISABLE`, `VERBOSE`, `POLL_LIMIT`), embedded-
//! software entry points and the paper's `TESTn_TARGET_PAGE` values.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::derivative::Derivative;
use crate::es::EsFunction;
use crate::memmap::{self, MemoryMap};
use crate::testbench::{Mailbox, PlatformId};

/// The value of one `Globals.inc` entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefineValue {
    /// A numeric `.EQU` value.
    Num(u32),
    /// A textual `.DEFINE` alias (e.g. `CallAddr` → `a12`).
    Alias(String),
}

/// One named entry of the globals file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Define {
    /// The symbol name tests and base functions reference.
    pub name: String,
    /// Its value.
    pub value: DefineValue,
}

/// Specification of a `Globals.inc` instance: derivative × platform ×
/// test-target overrides.
#[derive(Debug, Clone)]
pub struct GlobalsSpec {
    derivative: Derivative,
    platform: PlatformId,
    es_version: crate::es::EsVersion,
    test_pages: Vec<u32>,
    extra: BTreeMap<String, u32>,
}

impl GlobalsSpec {
    /// A spec with the paper's default test targets
    /// (`TEST1_TARGET_PAGE = 8`, `TEST2_TARGET_PAGE = 7`).
    pub fn new(derivative: Derivative, platform: PlatformId) -> Self {
        let es_version = derivative.es_version();
        Self {
            derivative,
            platform,
            es_version,
            test_pages: vec![8, 7],
            extra: BTreeMap::new(),
        }
    }

    /// Overrides the embedded-software release (the paper's Figure 7
    /// scenario updates the ES library under an otherwise unchanged chip).
    pub fn with_es_version(mut self, version: crate::es::EsVersion) -> Self {
        self.es_version = version;
        self
    }

    /// The embedded-software release this spec publishes.
    pub fn es_version(&self) -> crate::es::EsVersion {
        self.es_version
    }

    /// Replaces the test-target pages; entry *i* becomes
    /// `TEST{i+1}_TARGET_PAGE`.
    ///
    /// # Panics
    ///
    /// Panics if a page exceeds the derivative's page count — the
    /// constrained-random generator (advm-gen) guarantees this bound, and
    /// a hand-written spec violating it is a bug worth failing loudly on.
    pub fn with_test_pages(mut self, pages: Vec<u32>) -> Self {
        let max = self.derivative.page_count();
        for &p in &pages {
            assert!(
                p < max,
                "test page {p} exceeds page count {max} of {}",
                self.derivative.id()
            );
        }
        self.test_pages = pages;
        self
    }

    /// Generates `count` deterministic in-range test pages (used when
    /// scaling the Figure 6 experiment to N tests).
    pub fn with_generated_test_pages(self, count: usize) -> Self {
        let max = self.derivative.page_count();
        let pages = (0..count).map(|i| (i as u32 * 7 + 1) % max).collect();
        self.with_test_pages(pages)
    }

    /// Adds an extra numeric define.
    pub fn with_extra(mut self, name: impl Into<String>, value: u32) -> Self {
        self.extra.insert(name.into(), value);
        self
    }

    /// The derivative this spec targets.
    pub fn derivative(&self) -> &Derivative {
        &self.derivative
    }

    /// The platform this spec targets.
    pub fn platform(&self) -> PlatformId {
        self.platform
    }

    /// The test-target pages, in `TEST{i+1}_TARGET_PAGE` order.
    pub fn test_pages(&self) -> &[u32] {
        &self.test_pages
    }

    /// The extra numeric defines, in name order.
    pub fn extra(&self) -> impl Iterator<Item = (&str, u32)> {
        self.extra.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// Renders the complete globals file.
    pub fn render(&self) -> GlobalsFile {
        let map = self.derivative.regmap();
        let mem = MemoryMap::sc88();
        let mut defines: Vec<Define> = Vec::new();
        let mut num = |name: &str, value: u32| {
            defines.push(Define {
                name: name.to_owned(),
                value: DefineValue::Num(value),
            });
        };

        // Identity.
        num("PLATFORM_ID", self.platform.code());
        num("DERIVATIVE_ID", self.derivative.id().code());
        num("ES_VERSION", self.es_version.code());

        // Memory map.
        num("ROM_BASE", memmap::ROM_START);
        num("RAM_BASE", memmap::RAM_START);
        num("RAM_SIZE", memmap::RAM_SIZE);
        num("STACK_TOP", mem.stack_top());
        num("NVM_BASE", memmap::NVM_START);
        num("NVM_SIZE", memmap::NVM_SIZE);
        // Global trap-library conventions, re-mapped here per the paper's
        // rule for global-layer definitions.
        num("HOOK_IRQ0_ADDR", memmap::HOOK_IRQ0);
        num("HOOK_IRQ1_ADDR", memmap::HOOK_IRQ1);
        num("HOOK_TRAP8_ADDR", memmap::HOOK_TRAP8);
        num("HOOK_WDT_ADDR", memmap::HOOK_WDT);
        num("TEST_DATA_BASE", memmap::TEST_DATA_BASE);

        // Register addresses and geometry. Abstraction-layer names stay
        // stable even when the derivative renames the hardware register —
        // the remap the paper prescribes for global-layer name changes.
        let reg_addr = |module: &str, abstract_reg: &str| -> u32 {
            let hw = self.derivative.hardware_register_name(abstract_reg);
            map.module(module)
                .and_then(|m| m.register_addr(hw))
                .unwrap_or_else(|| panic!("register {module}.{abstract_reg} missing"))
        };
        let field_of = |module: &str, abstract_reg: &str, field: &str| {
            let hw = self.derivative.hardware_register_name(abstract_reg);
            map.module(module)
                .and_then(|m| m.register(hw))
                .and_then(|r| r.field(field).cloned())
                .unwrap_or_else(|| panic!("field {module}.{abstract_reg}.{field} missing"))
        };

        // PAGE module — the Figure 6 registers.
        num("PAGE_BASE", map.module("PAGE").expect("PAGE module").base());
        num("PAGE_CTRL_ADDR", reg_addr("PAGE", "PAGE_CTRL"));
        num("PAGE_STATUS_ADDR", reg_addr("PAGE", "PAGE_STATUS"));
        num("PAGE_MAP_ADDR", reg_addr("PAGE", "PAGE_MAP"));
        num("PAGE_WINDOW_ADDR", reg_addr("PAGE", "PAGE_WINDOW"));
        num("PAGE_WINDOW_SHIFT", 8);
        let page_field = field_of("PAGE", "PAGE_CTRL", "PAGE");
        num("PAGE_FIELD_START_POSITION", u32::from(page_field.pos()));
        num("PAGE_FIELD_SIZE", u32::from(page_field.width()));
        num("PAGE_COUNT", 1 << page_field.width());
        let enable_field = field_of("PAGE", "PAGE_CTRL", "ENABLE");
        num("PAGE_ENABLE_POSITION", u32::from(enable_field.pos()));
        num("PAGE_ENABLE_MASK", enable_field.mask());
        let active_field = field_of("PAGE", "PAGE_STATUS", "ACTIVE_PAGE");
        num("ACTIVE_PAGE_POSITION", u32::from(active_field.pos()));
        num("ACTIVE_PAGE_SIZE", u32::from(active_field.width()));
        let ready_field = field_of("PAGE", "PAGE_STATUS", "READY");
        num("PAGE_READY_MASK", ready_field.mask());

        // UART.
        num("UART_BASE", map.module("UART").expect("UART module").base());
        num("UART_CTRL_ADDR", reg_addr("UART", "CTRL"));
        num("UART_STATUS_ADDR", reg_addr("UART", "STATUS"));
        num("UART_DATA_ADDR", reg_addr("UART", "DATA"));
        num("UART_BAUD_ADDR", reg_addr("UART", "BAUD"));
        num(
            "UART_TX_READY_MASK",
            field_of("UART", "STATUS", "TX_READY").mask(),
        );
        num(
            "UART_RX_VALID_MASK",
            field_of("UART", "STATUS", "RX_VALID").mask(),
        );
        num(
            "UART_OVERRUN_MASK",
            field_of("UART", "STATUS", "OVERRUN").mask(),
        );
        num("UART_EN_MASK", field_of("UART", "CTRL", "EN").mask());
        num(
            "UART_LOOPBACK_MASK",
            field_of("UART", "CTRL", "LOOPBACK").mask(),
        );

        // TIMER.
        num("TIMER_CTRL_ADDR", reg_addr("TIMER", "CTRL"));
        num("TIMER_LOAD_ADDR", reg_addr("TIMER", "LOAD"));
        num("TIMER_VALUE_ADDR", reg_addr("TIMER", "VALUE"));
        num("TIMER_STATUS_ADDR", reg_addr("TIMER", "STATUS"));
        num("TIMER_EN_MASK", field_of("TIMER", "CTRL", "EN").mask());
        num("TIMER_IE_MASK", field_of("TIMER", "CTRL", "IE").mask());
        num(
            "TIMER_PERIODIC_MASK",
            field_of("TIMER", "CTRL", "PERIODIC").mask(),
        );
        num(
            "TIMER_EXPIRED_MASK",
            field_of("TIMER", "STATUS", "EXPIRED").mask(),
        );

        // INTC.
        num("INTC_ENABLE_ADDR", reg_addr("INTC", "ENABLE"));
        num("INTC_PENDING_ADDR", reg_addr("INTC", "PENDING"));
        num("INTC_ACK_ADDR", reg_addr("INTC", "ACK"));
        num("INTC_RAISE_ADDR", reg_addr("INTC", "RAISE"));

        // WDT.
        num("WDT_CTRL_ADDR", reg_addr("WDT", "CTRL"));
        num("WDT_SERVICE_ADDR", reg_addr("WDT", "SERVICE"));
        num("WDT_PERIOD_ADDR", reg_addr("WDT", "PERIOD"));
        num("WDT_SERVICE_KEY", 0xA5);

        // NVMC.
        num("NVMC_KEY_ADDR", reg_addr("NVMC", "KEY"));
        num("NVMC_CTRL_ADDR", reg_addr("NVMC", "CTRL"));
        num("NVMC_ADDR_ADDR", reg_addr("NVMC", "ADDR"));
        num("NVMC_DATA_ADDR", reg_addr("NVMC", "DATA"));
        num("NVMC_STATUS_ADDR", reg_addr("NVMC", "STATUS"));
        num("NVMC_CMD_ADDR", reg_addr("NVMC", "CMD"));

        // CRC.
        num("CRC_CTRL_ADDR", reg_addr("CRC", "CTRL"));
        num("CRC_DATA_IN_ADDR", reg_addr("CRC", "DATA_IN"));
        num("CRC_RESULT_ADDR", reg_addr("CRC", "RESULT"));

        // Architectural reset values of read/write registers, for the
        // "control and status register test" class the paper mentions.
        for module in map.modules() {
            if module.name() == "TB" {
                continue;
            }
            for reg in module.registers() {
                if reg.access() == crate::regmap::Access::ReadWrite {
                    // Publish under the stable abstraction-layer name even
                    // when the derivative renamed the hardware register.
                    let stable = self.derivative.abstract_register_name(reg.name());
                    num(&format!("{}_{}_RESET", module.name(), stable), reg.reset());
                }
            }
        }

        // Test bench mailbox.
        let mb = Mailbox::new();
        num("TB_RESULT_ADDR", mb.reg(Mailbox::RESULT));
        num("TB_CHAROUT_ADDR", mb.reg(Mailbox::CHAROUT));
        num("TB_SIM_END_ADDR", mb.reg(Mailbox::SIM_END));
        num("TB_TICKS_ADDR", mb.reg(Mailbox::TICKS));
        num("TB_PLATFORM_ADDR", mb.reg(Mailbox::PLATFORM));
        num("TB_SCRATCH_ADDR", mb.reg(Mailbox::SCRATCH));
        num("RESULT_PASS", Mailbox::PASS_MAGIC);
        num("RESULT_FAIL", Mailbox::FAIL_MAGIC);

        // Platform knobs — the "control of the test environment can be
        // changed depending on the target simulation platform" mechanism.
        let (wdt_disable, verbose, poll_limit) = platform_knobs(self.platform);
        num("WDT_DISABLE", wdt_disable);
        num("VERBOSE", verbose);
        num("POLL_LIMIT", poll_limit);

        // Embedded-software entry points (stable jump-table slots).
        for func in EsFunction::ALL {
            num(func.define_name(), func.entry_addr());
        }

        // Test targets.
        for (i, &page) in self.test_pages.iter().enumerate() {
            num(&format!("TEST{}_TARGET_PAGE", i + 1), page);
        }
        num("TEST_PAGE_COUNT", self.test_pages.len() as u32);

        // Extra overrides.
        for (name, value) in &self.extra {
            num(name, *value);
        }

        // Register aliases (.DEFINE) — the paper's `CallAddr .DEFINE A12`.
        defines.push(Define {
            name: "CallAddr".to_owned(),
            value: DefineValue::Alias("a12".to_owned()),
        });
        defines.push(Define {
            name: "RetVal".to_owned(),
            value: DefineValue::Alias("d2".to_owned()),
        });
        defines.push(Define {
            name: "ArgA".to_owned(),
            value: DefineValue::Alias("d4".to_owned()),
        });
        defines.push(Define {
            name: "ArgB".to_owned(),
            value: DefineValue::Alias("d5".to_owned()),
        });

        GlobalsFile::new(
            format!(
                ";; Globals.inc — {} on {} (generated, abstraction layer)",
                self.derivative.id(),
                self.platform
            ),
            defines,
        )
    }
}

fn platform_knobs(platform: PlatformId) -> (u32, u32, u32) {
    // (WDT_DISABLE, VERBOSE, POLL_LIMIT)
    match platform {
        PlatformId::GoldenModel => (0, 1, 10_000),
        PlatformId::RtlSim => (0, 1, 10_000),
        // Gate-level simulation is too slow for realistic watchdog
        // timing and character output.
        PlatformId::GateSim => (1, 0, 50_000),
        // The accelerator runs quiet for throughput.
        PlatformId::Accelerator => (0, 0, 100_000),
        PlatformId::Bondout => (0, 1, 1_000_000),
        PlatformId::ProductSilicon => (0, 0, 1_000_000),
    }
}

/// A rendered `Globals.inc`: the text plus a structured view of every
/// define for introspection by experiments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalsFile {
    header: String,
    defines: Vec<Define>,
}

impl GlobalsFile {
    fn new(header: String, defines: Vec<Define>) -> Self {
        Self { header, defines }
    }

    /// All defines in render order.
    pub fn defines(&self) -> &[Define] {
        &self.defines
    }

    /// Looks up a numeric define by name.
    pub fn value(&self, name: &str) -> Option<u32> {
        self.defines
            .iter()
            .find_map(|d| match (&d.value, d.name == name) {
                (DefineValue::Num(v), true) => Some(*v),
                _ => None,
            })
    }

    /// Looks up an alias define by name.
    pub fn alias(&self, name: &str) -> Option<&str> {
        self.defines
            .iter()
            .find_map(|d| match (&d.value, d.name == name) {
                (DefineValue::Alias(a), true) => Some(a.as_str()),
                _ => None,
            })
    }

    /// Renders the assembler source text of the file.
    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header);
        out.push('\n');
        for d in &self.defines {
            match &d.value {
                DefineValue::Num(v) => {
                    out.push_str(&format!("{} .EQU 0x{v:X}\n", d.name));
                }
                DefineValue::Alias(a) => {
                    out.push_str(&format!(".DEFINE {} {a}\n", d.name));
                }
            }
        }
        out
    }
}

impl fmt::Display for GlobalsFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivative::Derivative;

    fn render(d: Derivative, p: PlatformId) -> GlobalsFile {
        GlobalsSpec::new(d, p).render()
    }

    #[test]
    fn paper_defaults_present() {
        let g = render(Derivative::sc88a(), PlatformId::GoldenModel);
        assert_eq!(g.value("PAGE_FIELD_SIZE"), Some(5));
        assert_eq!(g.value("PAGE_FIELD_START_POSITION"), Some(0));
        assert_eq!(g.value("TEST1_TARGET_PAGE"), Some(8));
        assert_eq!(g.value("TEST2_TARGET_PAGE"), Some(7));
        assert_eq!(g.alias("CallAddr"), Some("a12"));
    }

    #[test]
    fn sc88b_shifts_field_position_only() {
        let a = render(Derivative::sc88a(), PlatformId::GoldenModel);
        let b = render(Derivative::sc88b(), PlatformId::GoldenModel);
        assert_eq!(b.value("PAGE_FIELD_START_POSITION"), Some(1));
        assert_eq!(b.value("PAGE_FIELD_SIZE"), a.value("PAGE_FIELD_SIZE"));
        assert_eq!(b.value("PAGE_CTRL_ADDR"), a.value("PAGE_CTRL_ADDR"));
    }

    #[test]
    fn sc88c_widens_field_and_doubles_pages() {
        let g = render(Derivative::sc88c(), PlatformId::GoldenModel);
        assert_eq!(g.value("PAGE_FIELD_SIZE"), Some(6));
        assert_eq!(g.value("PAGE_COUNT"), Some(64));
    }

    #[test]
    fn sc88d_remaps_renamed_register_and_moved_uart() {
        let a = render(Derivative::sc88a(), PlatformId::GoldenModel);
        let d = render(Derivative::sc88d(), PlatformId::GoldenModel);
        // The define name survives the hardware rename...
        assert_eq!(d.value("PAGE_CTRL_ADDR"), a.value("PAGE_CTRL_ADDR"));
        // ...and the relocated UART is picked up.
        assert_eq!(d.value("UART_DATA_ADDR"), Some(0xE_0808));
        assert_eq!(d.value("ES_VERSION"), Some(2));
    }

    #[test]
    fn platform_knobs_differ() {
        let golden = render(Derivative::sc88a(), PlatformId::GoldenModel);
        let gate = render(Derivative::sc88a(), PlatformId::GateSim);
        let accel = render(Derivative::sc88a(), PlatformId::Accelerator);
        assert_eq!(golden.value("WDT_DISABLE"), Some(0));
        assert_eq!(gate.value("WDT_DISABLE"), Some(1));
        assert_eq!(golden.value("VERBOSE"), Some(1));
        assert_eq!(accel.value("VERBOSE"), Some(0));
        assert_ne!(golden.value("POLL_LIMIT"), accel.value("POLL_LIMIT"));
    }

    #[test]
    fn es_entries_published() {
        let g = render(Derivative::sc88a(), PlatformId::GoldenModel);
        assert_eq!(
            g.value("ES_INIT_REGISTER"),
            Some(EsFunction::InitRegister.entry_addr())
        );
        assert_eq!(g.value("ES_MEMCPY"), Some(EsFunction::Memcpy.entry_addr()));
    }

    #[test]
    fn generated_test_pages_respect_page_count() {
        let spec = GlobalsSpec::new(Derivative::sc88a(), PlatformId::GoldenModel)
            .with_generated_test_pages(100);
        let g = spec.render();
        assert_eq!(g.value("TEST_PAGE_COUNT"), Some(100));
        for i in 1..=100 {
            let v = g.value(&format!("TEST{i}_TARGET_PAGE")).unwrap();
            assert!(v < 32, "page {v} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds page count")]
    fn out_of_range_test_page_panics() {
        let _ = GlobalsSpec::new(Derivative::sc88a(), PlatformId::GoldenModel)
            .with_test_pages(vec![32]);
    }

    #[test]
    fn text_renders_equ_and_define() {
        let g = render(Derivative::sc88a(), PlatformId::GoldenModel);
        let text = g.text();
        assert!(text.contains("PAGE_FIELD_SIZE .EQU 0x5"));
        assert!(text.contains(".DEFINE CallAddr a12"));
        assert!(text.starts_with(";; Globals.inc"));
    }

    #[test]
    fn extra_defines_rendered() {
        let g = GlobalsSpec::new(Derivative::sc88a(), PlatformId::GoldenModel)
            .with_extra("MY_KNOB", 42)
            .render();
        assert_eq!(g.value("MY_KNOB"), Some(42));
    }
}
