//! # advm-soc — SoC modelling for the ADVM reproduction
//!
//! The ADVM paper's central claim is that a chip *derivative* — a new
//! version of the SLE88 with moved register fields, renamed registers,
//! relocated peripherals or revised embedded software — can be absorbed by
//! the test environment's abstraction layer. That only means something if
//! derivatives are real objects. This crate provides:
//!
//! * [`regmap`] — modules, registers and named bit-fields with reset
//!   values and access rights (the "Global Control & Status Register
//!   Definitions" of the paper's Figure 1),
//! * [`memmap`] — the SC88 memory map (ROM / RAM / NVM / MMIO regions),
//! * [`derivative`] — a change algebra over register maps producing the
//!   four catalogued derivatives SC88-A/B/C/D, which implement exactly the
//!   change classes §4 of the paper walks through,
//! * [`es`] — the embedded-software ROM (global layer): versioned
//!   assembler functions whose v2 revision swaps input registers, the
//!   scenario of the paper's Figure 7,
//! * [`globals`] — generation of the abstraction layer's `Globals.inc`
//!   from a (derivative, platform) pair,
//! * [`testbench`] — the test-bench mailbox protocol that test programs
//!   use to report PASS/FAIL across every platform.
//!
//! ```
//! use advm_soc::Derivative;
//!
//! let base = Derivative::sc88a().regmap();
//! let page = base.module("PAGE").expect("base map has a PAGE module");
//! let field = page.register("PAGE_CTRL").unwrap().field("PAGE").unwrap();
//! assert_eq!((field.pos(), field.width()), (0, 5));
//!
//! // Derivative C widens the page field — the paper's "more pages" case.
//! let derived = Derivative::sc88c().regmap();
//! let field = derived.module("PAGE").unwrap()
//!     .register("PAGE_CTRL").unwrap().field("PAGE").unwrap();
//! assert_eq!((field.pos(), field.width()), (0, 6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod derivative;
pub mod es;
pub mod globals;
pub mod memmap;
pub mod regmap;
pub mod testbench;

pub use derivative::{base_regmap, ChangeOp, Derivative, DerivativeId};
pub use es::{EsFunction, EsRom, EsVersion};
pub use globals::{Define, DefineValue, GlobalsFile, GlobalsSpec};
pub use memmap::{MemoryMap, Region, RegionKind};
pub use regmap::{Access, Field, Module, RegMap, RegMapError, Register};
pub use testbench::{Mailbox, PlatformId, TestOutcome};
