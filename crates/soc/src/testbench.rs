//! The test-bench mailbox: how assembler tests talk to the platform.
//!
//! The paper's tests run unmodified on six very different platforms (§1).
//! That requires a platform-independent way for a test to say *"I passed"*
//! or *"I failed"* and to end the simulation. SC88 uses a memory-mapped
//! mailbox at the top of the MMIO region; every platform implements it
//! (silicon via a debug/test port, simulators natively), and the
//! abstraction layer's `Globals.inc` publishes its addresses so tests
//! never hardwire them.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of an execution platform, as reported by the mailbox's
/// `PLATFORM` register. These are the six development platforms the paper
/// lists in §1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PlatformId {
    /// The golden reference model — the software simulator supplied to the
    /// customer for software development.
    GoldenModel,
    /// HDL-RTL simulation of the design for silicon.
    RtlSim,
    /// Post-synthesis gate-level simulation.
    GateSim,
    /// Hardware accelerator / emulator (the paper names Quickturn, IKOS).
    Accelerator,
    /// Bondout silicon with extra debug capabilities.
    Bondout,
    /// Final product silicon.
    ProductSilicon,
}

impl PlatformId {
    /// All platforms in the paper's §1 order.
    pub const ALL: [PlatformId; 6] = [
        PlatformId::GoldenModel,
        PlatformId::RtlSim,
        PlatformId::GateSim,
        PlatformId::Accelerator,
        PlatformId::Bondout,
        PlatformId::ProductSilicon,
    ];

    /// The identity code readable from the mailbox `PLATFORM` register.
    pub fn code(self) -> u32 {
        match self {
            PlatformId::GoldenModel => 1,
            PlatformId::RtlSim => 2,
            PlatformId::GateSim => 3,
            PlatformId::Accelerator => 4,
            PlatformId::Bondout => 5,
            PlatformId::ProductSilicon => 6,
        }
    }

    /// Decodes a `PLATFORM` register value.
    pub fn from_code(code: u32) -> Option<PlatformId> {
        PlatformId::ALL.into_iter().find(|p| p.code() == code)
    }

    /// Short name used in reports and directory layouts.
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::GoldenModel => "golden",
            PlatformId::RtlSim => "rtl",
            PlatformId::GateSim => "gate",
            PlatformId::Accelerator => "accel",
            PlatformId::Bondout => "bondout",
            PlatformId::ProductSilicon => "silicon",
        }
    }

    /// Whether the platform exposes debug visibility (trace of `DBG`
    /// markers, register watchpoints). Only the golden model, RTL
    /// simulation and the bondout device do.
    pub fn has_debug_visibility(self) -> bool {
        matches!(
            self,
            PlatformId::GoldenModel | PlatformId::RtlSim | PlatformId::Bondout
        )
    }

    /// Rough relative execution speed (instructions per wall-clock unit),
    /// used to model platform-dependent polling budgets. Gate-level
    /// simulation is orders of magnitude slower than silicon.
    pub fn speed_class(self) -> u32 {
        match self {
            PlatformId::GateSim => 1,
            PlatformId::RtlSim => 10,
            PlatformId::GoldenModel => 1_000,
            PlatformId::Accelerator => 10_000,
            PlatformId::Bondout => 100_000,
            PlatformId::ProductSilicon => 100_000,
        }
    }
}

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The mailbox register block. Base address and offsets are identical on
/// every derivative — the mailbox belongs to the verification environment,
/// not the chip — but tests still reach it through `Globals.inc` defines,
/// as the methodology requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mailbox {
    base: u32,
}

impl Mailbox {
    /// Standard mailbox base address, at the top of the MMIO region.
    pub const BASE: u32 = 0xE_FF00;

    /// `RESULT` register offset: tests write [`Mailbox::PASS_MAGIC`] or
    /// [`Mailbox::FAIL_MAGIC`] (OR-ed with a detail code) here.
    pub const RESULT: u32 = 0x00;
    /// `CHAROUT` register offset: console byte output.
    pub const CHAROUT: u32 = 0x04;
    /// `SIM_END` register offset: any write terminates the platform run.
    pub const SIM_END: u32 = 0x08;
    /// `TICKS` register offset: read the platform cycle counter.
    pub const TICKS: u32 = 0x0C;
    /// `PLATFORM` register offset: read the [`PlatformId`] code.
    pub const PLATFORM: u32 = 0x10;
    /// `SCRATCH` register offset: free read/write word for tests.
    pub const SCRATCH: u32 = 0x14;

    /// Magic prefix for a passing result (low 16 bits carry a detail code).
    pub const PASS_MAGIC: u32 = 0x600D_0000;
    /// Magic prefix for a failing result (low 16 bits carry a detail code).
    pub const FAIL_MAGIC: u32 = 0xBAD0_0000;
    /// Mask selecting the magic prefix of a result word.
    pub const MAGIC_MASK: u32 = 0xFFFF_0000;

    /// A mailbox at the standard base.
    pub fn new() -> Self {
        Self { base: Self::BASE }
    }

    /// A mailbox at a custom base (used by fault-injection tests).
    pub fn at(base: u32) -> Self {
        Self { base }
    }

    /// The mailbox base address.
    pub fn base(self) -> u32 {
        self.base
    }

    /// Absolute address of a register given its offset constant.
    pub fn reg(self, offset: u32) -> u32 {
        self.base + offset
    }

    /// Interprets a word written to `RESULT`.
    pub fn classify_result(word: u32) -> Option<TestOutcome> {
        match word & Self::MAGIC_MASK {
            Self::PASS_MAGIC => Some(TestOutcome::Pass {
                detail: (word & 0xFFFF) as u16,
            }),
            Self::FAIL_MAGIC => Some(TestOutcome::Fail {
                detail: (word & 0xFFFF) as u16,
            }),
            _ => None,
        }
    }
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome reported by a test through the mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestOutcome {
    /// The test wrote `PASS_MAGIC | detail`.
    Pass {
        /// Test-specific detail code (usually 0).
        detail: u16,
    },
    /// The test wrote `FAIL_MAGIC | detail`.
    Fail {
        /// Test-specific failure code (usually a check number).
        detail: u16,
    },
}

impl TestOutcome {
    /// Whether the outcome is a pass.
    pub fn passed(self) -> bool {
        matches!(self, TestOutcome::Pass { .. })
    }
}

impl fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestOutcome::Pass { detail } => write!(f, "PASS({detail})"),
            TestOutcome::Fail { detail } => write!(f, "FAIL({detail})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_codes_roundtrip() {
        for p in PlatformId::ALL {
            assert_eq!(PlatformId::from_code(p.code()), Some(p));
        }
        assert_eq!(PlatformId::from_code(0), None);
        assert_eq!(PlatformId::from_code(7), None);
    }

    #[test]
    fn platform_codes_distinct() {
        let mut codes: Vec<u32> = PlatformId::ALL.iter().map(|p| p.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), PlatformId::ALL.len());
    }

    #[test]
    fn debug_visibility_matches_paper() {
        // The bondout device is "enhanced to include extra hardware
        // debugging capabilities"; product silicon is not.
        assert!(PlatformId::Bondout.has_debug_visibility());
        assert!(!PlatformId::ProductSilicon.has_debug_visibility());
        assert!(!PlatformId::Accelerator.has_debug_visibility());
    }

    #[test]
    fn gate_sim_is_slowest() {
        let gate = PlatformId::GateSim.speed_class();
        for p in PlatformId::ALL {
            assert!(p.speed_class() >= gate);
        }
    }

    #[test]
    fn mailbox_addresses() {
        let mb = Mailbox::new();
        assert_eq!(mb.reg(Mailbox::RESULT), 0xE_FF00);
        assert_eq!(mb.reg(Mailbox::PLATFORM), 0xE_FF10);
        assert_eq!(Mailbox::at(0x1000).reg(Mailbox::SIM_END), 0x1008);
    }

    #[test]
    fn result_classification() {
        assert_eq!(
            Mailbox::classify_result(Mailbox::PASS_MAGIC),
            Some(TestOutcome::Pass { detail: 0 })
        );
        assert_eq!(
            Mailbox::classify_result(Mailbox::FAIL_MAGIC | 7),
            Some(TestOutcome::Fail { detail: 7 })
        );
        assert_eq!(Mailbox::classify_result(0xDEAD_BEEF), None);
        assert!(TestOutcome::Pass { detail: 1 }.passed());
        assert!(!TestOutcome::Fail { detail: 0 }.passed());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(TestOutcome::Pass { detail: 0 }.to_string(), "PASS(0)");
        assert_eq!(TestOutcome::Fail { detail: 3 }.to_string(), "FAIL(3)");
    }
}
