//! The embedded-software (ES) ROM — the paper's *global layer* code.
//!
//! In the paper's Figure 7, tests need `ES_Init_Register`, a function that
//! belongs to the embedded-software team, *not* to the verification team.
//! The methodology's rule: tests never call it directly; the abstraction
//! layer's `Base_Functions.asm` wraps it, so when the ES team re-releases
//! the library "in such a way that the input registers have been swapped
//! around", only the wrapper needs re-factoring.
//!
//! This module generates the ES ROM as real SC88 assembler source, baked
//! for a given derivative's register map (the ES team knows their own
//! chip, so hardwired addresses are correct *here* — it is the tests that
//! must not hardwire them). Two releases exist:
//!
//! * [`EsVersion::V1`] — the original calling conventions,
//! * [`EsVersion::V2`] — input registers swapped on `ES_Nvm_Write_Word`
//!   and `ES_Memcpy`, the UART byte moved to `d5`, and the checksum
//!   result moved to `d3`.
//!
//! The ROM begins with a jump table so that entry addresses are stable
//! across releases: entry *i* lives at `ES_BASE + 4*i`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::derivative::Derivative;
use crate::memmap::ES_BASE;

/// Release version of the embedded-software ROM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EsVersion {
    /// Original release.
    V1,
    /// Revised release with swapped input registers (the Figure 7 event).
    V2,
}

impl EsVersion {
    /// Numeric code published via the `ES_VERSION` define.
    pub fn code(self) -> u32 {
        match self {
            EsVersion::V1 => 1,
            EsVersion::V2 => 2,
        }
    }
}

impl fmt::Display for EsVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EsVersion::V1 => f.write_str("v1"),
            EsVersion::V2 => f.write_str("v2"),
        }
    }
}

/// A function exported by the ES ROM jump table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EsFunction {
    /// Initialise the page-module control register to its safe default.
    InitRegister,
    /// Transmit one byte over the UART (v1: byte in `d4`; v2: `d5`).
    UartSendByte,
    /// Run the NVM controller unlock sequence.
    NvmUnlock,
    /// Write one word to NVM (v1: addr `d4`, value `d5`; v2: swapped).
    NvmWriteWord,
    /// Copy words (v1: dst `a4`, src `a5`, len `d4`; v2: src/dst swapped).
    Memcpy,
    /// Sum words (base `a4`, len `d4`; v1 result `d2`, v2 result `d3`).
    Checksum,
    /// Busy-wait `d4` loop iterations.
    Delay,
}

impl EsFunction {
    /// All exported functions in jump-table order.
    pub const ALL: [EsFunction; 7] = [
        EsFunction::InitRegister,
        EsFunction::UartSendByte,
        EsFunction::NvmUnlock,
        EsFunction::NvmWriteWord,
        EsFunction::Memcpy,
        EsFunction::Checksum,
        EsFunction::Delay,
    ];

    /// Index in the jump table.
    pub fn table_index(self) -> u32 {
        EsFunction::ALL
            .iter()
            .position(|f| *f == self)
            .expect("function is in ALL") as u32
    }

    /// Stable entry address (the jump-table slot), independent of release.
    pub fn entry_addr(self) -> u32 {
        ES_BASE + 4 * self.table_index()
    }

    /// The assembler label of the function body.
    pub fn label(self) -> &'static str {
        match self {
            EsFunction::InitRegister => "ES_Init_Register",
            EsFunction::UartSendByte => "ES_Uart_Send_Byte",
            EsFunction::NvmUnlock => "ES_Nvm_Unlock",
            EsFunction::NvmWriteWord => "ES_Nvm_Write_Word",
            EsFunction::Memcpy => "ES_Memcpy",
            EsFunction::Checksum => "ES_Checksum",
            EsFunction::Delay => "ES_Delay",
        }
    }

    /// The `Globals.inc` define name for the entry address.
    pub fn define_name(self) -> &'static str {
        match self {
            EsFunction::InitRegister => "ES_INIT_REGISTER",
            EsFunction::UartSendByte => "ES_UART_SEND_BYTE",
            EsFunction::NvmUnlock => "ES_NVM_UNLOCK",
            EsFunction::NvmWriteWord => "ES_NVM_WRITE_WORD",
            EsFunction::Memcpy => "ES_MEMCPY",
            EsFunction::Checksum => "ES_CHECKSUM",
            EsFunction::Delay => "ES_DELAY",
        }
    }

    /// Human-readable calling convention for a release, for documentation
    /// and change logs.
    pub fn signature(self, version: EsVersion) -> &'static str {
        match (self, version) {
            (EsFunction::InitRegister, _) => "()",
            (EsFunction::UartSendByte, EsVersion::V1) => "(d4: byte)",
            (EsFunction::UartSendByte, EsVersion::V2) => "(d5: byte)",
            (EsFunction::NvmUnlock, _) => "()",
            (EsFunction::NvmWriteWord, EsVersion::V1) => "(d4: addr, d5: value)",
            (EsFunction::NvmWriteWord, EsVersion::V2) => "(d4: value, d5: addr)",
            (EsFunction::Memcpy, EsVersion::V1) => "(a4: dst, a5: src, d4: words)",
            (EsFunction::Memcpy, EsVersion::V2) => "(a4: src, a5: dst, d4: words)",
            (EsFunction::Checksum, EsVersion::V1) => "(a4: base, d4: words) -> d2",
            (EsFunction::Checksum, EsVersion::V2) => "(a4: base, d4: words) -> d3",
            (EsFunction::Delay, _) => "(d4: iterations)",
        }
    }

    /// Whether the calling convention changed between v1 and v2 — the
    /// functions whose wrappers the abstraction layer must re-factor.
    pub fn changed_in_v2(self) -> bool {
        self.signature(EsVersion::V1) != self.signature(EsVersion::V2)
    }
}

impl fmt::Display for EsFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A generated embedded-software ROM for one (derivative, version) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EsRom {
    version: EsVersion,
    derivative_name: String,
    source: String,
}

impl EsRom {
    /// Generates the ROM source for a derivative, using the ES release the
    /// derivative ships with.
    pub fn for_derivative(derivative: &Derivative) -> Self {
        Self::generate(derivative, derivative.es_version())
    }

    /// Generates the ROM source for a derivative with an explicit release
    /// (used by the Figure 7 experiment to swap v1 → v2 under an
    /// otherwise unchanged chip).
    pub fn generate(derivative: &Derivative, version: EsVersion) -> Self {
        let map = derivative.regmap();
        let addr = |module: &str, reg: &str| -> u32 {
            let hw = derivative.hardware_register_name(reg);
            map.module(module)
                .and_then(|m| m.register_addr(hw))
                .unwrap_or_else(|| panic!("register {module}.{reg} missing from map"))
        };

        let page_ctrl = addr("PAGE", "PAGE_CTRL");
        let uart_status = addr("UART", "STATUS");
        let uart_data = addr("UART", "DATA");
        let nvmc_key = addr("NVMC", "KEY");
        let nvmc_addr = addr("NVMC", "ADDR");
        let nvmc_data = addr("NVMC", "DATA");
        let nvmc_cmd = addr("NVMC", "CMD");
        let nvmc_status = addr("NVMC", "STATUS");

        // The page-module "safe default": ENABLE set, everything else 0.
        let enable_pos = map
            .module("PAGE")
            .and_then(|m| m.register(derivative.hardware_register_name("PAGE_CTRL")))
            .and_then(|r| r.field("ENABLE"))
            .map(|f| f.pos())
            .expect("PAGE_CTRL always has ENABLE");
        let reg_init_value = 1u32 << enable_pos;

        let mut src = String::new();
        let mut line = |s: &str| {
            src.push_str(s);
            src.push('\n');
        };

        line(&format!(
            ";; Embedded_Software.asm — ES ROM {version} for {} (global layer)",
            derivative.id()
        ));
        line(";; Generated by the ES team's build; addresses are hardwired");
        line(";; here by design — this code is NOT under verification-team");
        line(";; control, which is exactly why tests must not call it directly.");
        line(&format!(".ORG 0x{ES_BASE:05X}"));
        line("");
        line("ES_JumpTable:");
        for f in EsFunction::ALL {
            line(&format!("    JMP {}", f.label()));
        }
        line("");

        // -- ES_Init_Register (Figure 7's function) -----------------------
        line("ES_Init_Register:");
        line(&format!(
            "    MOVI d15, #0x{reg_init_value:X}   ; REG_INIT_VALUE"
        ));
        line(&format!(
            "    LOAD a14, #0x{page_ctrl:05X}    ; page control register"
        ));
        line("    STORE [a14], d15");
        line("    RETURN");
        line("");

        // -- ES_Uart_Send_Byte --------------------------------------------
        line("ES_Uart_Send_Byte:");
        let uart_byte_reg = match version {
            EsVersion::V1 => "d4",
            EsVersion::V2 => "d5",
        };
        line(&format!("    ; byte to send in {uart_byte_reg}"));
        line(&format!("    LOAD a14, #0x{uart_status:05X}"));
        line("es_usb_wait:");
        line("    LOAD d15, [a14]");
        line("    ANDI d15, d15, #1       ; TX_READY");
        line("    CMPI d15, #0");
        line("    JEQ es_usb_wait");
        line(&format!("    LOAD a14, #0x{uart_data:05X}"));
        line(&format!("    STORE [a14], {uart_byte_reg}"));
        line("    RETURN");
        line("");

        // -- ES_Nvm_Unlock -------------------------------------------------
        line("ES_Nvm_Unlock:");
        line(&format!("    LOAD a14, #0x{nvmc_key:05X}"));
        line("    MOVI d15, #0x55");
        line("    STORE [a14], d15");
        line("    MOVI d15, #0xAA");
        line("    STORE [a14], d15");
        line("    RETURN");
        line("");

        // -- ES_Nvm_Write_Word ----------------------------------------------
        line("ES_Nvm_Write_Word:");
        let (nvm_addr_reg, nvm_val_reg) = match version {
            EsVersion::V1 => ("d4", "d5"),
            EsVersion::V2 => ("d5", "d4"), // the paper's swapped inputs
        };
        line(&format!(
            "    ; address in {nvm_addr_reg}, value in {nvm_val_reg}"
        ));
        line(&format!("    LOAD a14, #0x{nvmc_addr:05X}"));
        line(&format!("    STORE [a14], {nvm_addr_reg}"));
        line(&format!("    LOAD a14, #0x{nvmc_data:05X}"));
        line(&format!("    STORE [a14], {nvm_val_reg}"));
        line("    MOVI d15, #1            ; CMD_WRITE");
        line(&format!("    LOAD a14, #0x{nvmc_cmd:05X}"));
        line("    STORE [a14], d15");
        line(&format!("    LOAD a14, #0x{nvmc_status:05X}"));
        line("es_nw_wait:");
        line("    LOAD d15, [a14]");
        line("    ANDI d15, d15, #1       ; BUSY");
        line("    CMPI d15, #0");
        line("    JNE es_nw_wait");
        line("    RETURN");
        line("");

        // -- ES_Memcpy -------------------------------------------------------
        line("ES_Memcpy:");
        let (mc_dst, mc_src) = match version {
            EsVersion::V1 => ("a4", "a5"),
            EsVersion::V2 => ("a5", "a4"), // swapped roles
        };
        line(&format!(
            "    ; dst in {mc_dst}, src in {mc_src}, word count in d4"
        ));
        line("es_mc_loop:");
        line("    CMPI d4, #0");
        line("    JEQ es_mc_done");
        line(&format!("    LOAD d15, [{mc_src}]"));
        line(&format!("    STORE [{mc_dst}], d15"));
        line(&format!("    ADDA {mc_dst}, #4"));
        line(&format!("    ADDA {mc_src}, #4"));
        line("    ADDI d4, d4, #-1");
        line("    JMP es_mc_loop");
        line("es_mc_done:");
        line("    RETURN");
        line("");

        // -- ES_Checksum ----------------------------------------------------
        line("ES_Checksum:");
        let cs_result = match version {
            EsVersion::V1 => "d2",
            EsVersion::V2 => "d3", // result register moved
        };
        line(&format!(
            "    ; base in a4, word count in d4, result in {cs_result}"
        ));
        line(&format!("    MOVI {cs_result}, #0"));
        line("es_cs_loop:");
        line("    CMPI d4, #0");
        line("    JEQ es_cs_done");
        line("    LOAD d15, [a4]");
        line(&format!("    ADD {cs_result}, {cs_result}, d15"));
        line("    ADDA a4, #4");
        line("    ADDI d4, d4, #-1");
        line("    JMP es_cs_loop");
        line("es_cs_done:");
        line("    RETURN");
        line("");

        // -- ES_Delay --------------------------------------------------------
        line("ES_Delay:");
        line("    ; iterations in d4");
        line("es_dl_loop:");
        line("    CMPI d4, #0");
        line("    JEQ es_dl_done");
        line("    ADDI d4, d4, #-1");
        line("    JMP es_dl_loop");
        line("es_dl_done:");
        line("    RETURN");

        Self {
            version,
            derivative_name: derivative.id().name().to_owned(),
            source: src,
        }
    }

    /// The ES release this ROM implements.
    pub fn version(&self) -> EsVersion {
        self.version
    }

    /// The derivative the ROM was generated for.
    pub fn derivative_name(&self) -> &str {
        &self.derivative_name
    }

    /// The full assembler source of the ROM.
    pub fn source(&self) -> &str {
        &self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivative::Derivative;

    #[test]
    fn entry_addresses_are_table_slots() {
        assert_eq!(EsFunction::InitRegister.entry_addr(), ES_BASE);
        assert_eq!(EsFunction::UartSendByte.entry_addr(), ES_BASE + 4);
        assert_eq!(EsFunction::Delay.entry_addr(), ES_BASE + 24);
    }

    #[test]
    fn table_indices_are_dense_and_unique() {
        for (i, f) in EsFunction::ALL.iter().enumerate() {
            assert_eq!(f.table_index() as usize, i);
        }
    }

    #[test]
    fn v2_changes_exactly_the_documented_functions() {
        let changed: Vec<EsFunction> = EsFunction::ALL
            .into_iter()
            .filter(|f| f.changed_in_v2())
            .collect();
        assert_eq!(
            changed,
            vec![
                EsFunction::UartSendByte,
                EsFunction::NvmWriteWord,
                EsFunction::Memcpy,
                EsFunction::Checksum,
            ]
        );
    }

    #[test]
    fn v1_and_v2_sources_differ() {
        let a = Derivative::sc88a();
        let v1 = EsRom::generate(&a, EsVersion::V1);
        let v2 = EsRom::generate(&a, EsVersion::V2);
        assert_ne!(v1.source(), v2.source());
        // v1 writes the NVM address from d4, v2 from d5.
        assert!(v1.source().contains("; address in d4, value in d5"));
        assert!(v2.source().contains("; address in d5, value in d4"));
    }

    #[test]
    fn source_bakes_derivative_addresses() {
        // SC88-D relocates the UART to 0xE0800; its ES ROM must follow.
        let rom_a = EsRom::for_derivative(&Derivative::sc88a());
        let rom_d = EsRom::for_derivative(&Derivative::sc88d());
        assert!(rom_a.source().contains("0xE0004")); // UART STATUS on A
        assert!(rom_d.source().contains("0xE0804")); // UART STATUS on D
    }

    #[test]
    fn sc88d_ships_v2() {
        let rom = EsRom::for_derivative(&Derivative::sc88d());
        assert_eq!(rom.version(), EsVersion::V2);
        assert_eq!(rom.derivative_name(), "SC88-D");
    }

    #[test]
    fn rom_starts_with_jump_table() {
        let rom = EsRom::for_derivative(&Derivative::sc88a());
        let table_pos = rom.source().find("ES_JumpTable:").unwrap();
        let first_fn = rom.source().find("ES_Init_Register:").unwrap();
        assert!(table_pos < first_fn);
        for f in EsFunction::ALL {
            assert!(
                rom.source().contains(&format!("JMP {}", f.label())),
                "missing table entry for {f}"
            );
        }
    }
}
