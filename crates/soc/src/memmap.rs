//! The SC88 memory map.
//!
//! The whole architecturally visible space fits in the ISA's 20-bit
//! absolute addressing (see [`advm_isa::ADDR_SPACE_BYTES`]):
//!
//! | region | range | contents |
//! |--------|-------|----------|
//! | ROM    | `0x00000..0x40000` | vector table, reset code, test image, ES ROM |
//! | RAM    | `0x40000..0x60000` | data, stack (SP starts at `0x60000`) |
//! | NVM    | `0x80000..0x90000` | non-volatile memory, written via the NVM controller |
//! | MMIO   | `0xE0000..0xF0000` | peripheral registers |

use std::fmt;

use serde::{Deserialize, Serialize};

/// Classification of a memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Execute/read-only program memory.
    Rom,
    /// Volatile read/write memory.
    Ram,
    /// Non-volatile memory: readable on the bus, writable only through the
    /// NVM controller's unlock sequence.
    Nvm,
    /// Memory-mapped peripheral registers.
    Mmio,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RegionKind::Rom => "ROM",
            RegionKind::Ram => "RAM",
            RegionKind::Nvm => "NVM",
            RegionKind::Mmio => "MMIO",
        })
    }
}

/// One contiguous region of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    kind: RegionKind,
    start: u32,
    size: u32,
}

impl Region {
    /// Creates a region covering `start..start + size`.
    pub fn new(kind: RegionKind, start: u32, size: u32) -> Self {
        Self { kind, start, size }
    }

    /// The region's classification.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// First byte address.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// One past the last byte address.
    pub fn end(&self) -> u32 {
        self.start + self.size
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end()
    }

    fn overlaps(&self, other: &Region) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// The memory map of one SC88 chip.
///
/// All derivatives share the same coarse map; peripheral placement within
/// MMIO is per-derivative and lives in the register map instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryMap {
    regions: Vec<Region>,
    stack_top: u32,
    es_base: u32,
}

/// Default ROM region start.
pub const ROM_START: u32 = 0x0_0000;
/// Default ROM region size (256 KiB).
pub const ROM_SIZE: u32 = 0x4_0000;
/// Default RAM region start.
pub const RAM_START: u32 = 0x4_0000;
/// Default RAM region size (128 KiB).
pub const RAM_SIZE: u32 = 0x2_0000;
/// Default NVM region start.
pub const NVM_START: u32 = 0x8_0000;
/// Default NVM region size (64 KiB).
pub const NVM_SIZE: u32 = 0x1_0000;
/// Default MMIO region start.
pub const MMIO_START: u32 = 0xE_0000;
/// Default MMIO region size (64 KiB).
pub const MMIO_SIZE: u32 = 0x1_0000;
/// Initial stack pointer (top of RAM; the stack grows downwards).
pub const STACK_TOP: u32 = RAM_START + RAM_SIZE;
/// Link base of the embedded-software ROM within the ROM region.
pub const ES_BASE: u32 = 0x3_0000;

// Software conventions of the global trap-handler library: RAM words
// holding runtime-installable handler hooks. The library hardwires these
// (it is global-layer code); `Globals.inc` re-publishes them for tests.
/// RAM word holding the IRQ-line-0 handler hook.
pub const HOOK_IRQ0: u32 = RAM_START + 0x10;
/// RAM word holding the IRQ-line-1 handler hook.
pub const HOOK_IRQ1: u32 = RAM_START + 0x14;
/// RAM word holding the software-trap-8 handler hook.
pub const HOOK_TRAP8: u32 = RAM_START + 0x18;
/// RAM word holding the watchdog handler hook.
pub const HOOK_WDT: u32 = RAM_START + 0x1C;
/// Start of the RAM area reserved for test scratch data.
pub const TEST_DATA_BASE: u32 = RAM_START + 0x1000;

impl MemoryMap {
    /// The standard SC88 memory map shared by all derivatives.
    pub fn sc88() -> Self {
        Self {
            regions: vec![
                Region::new(RegionKind::Rom, ROM_START, ROM_SIZE),
                Region::new(RegionKind::Ram, RAM_START, RAM_SIZE),
                Region::new(RegionKind::Nvm, NVM_START, NVM_SIZE),
                Region::new(RegionKind::Mmio, MMIO_START, MMIO_SIZE),
            ],
            stack_top: STACK_TOP,
            es_base: ES_BASE,
        }
    }

    /// All regions in address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `addr`, if any.
    pub fn region_at(&self, addr: u32) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// The region of the given kind (the SC88 map has exactly one of each).
    pub fn region(&self, kind: RegionKind) -> Option<&Region> {
        self.regions.iter().find(|r| r.kind == kind)
    }

    /// Initial stack pointer value.
    pub fn stack_top(&self) -> u32 {
        self.stack_top
    }

    /// Link base of the embedded-software ROM.
    pub fn es_base(&self) -> u32 {
        self.es_base
    }

    /// Checks internal consistency: regions must not overlap, the stack
    /// top must bound the RAM region, and the ES base must lie in ROM.
    pub fn validate(&self) -> Result<(), String> {
        for (i, a) in self.regions.iter().enumerate() {
            for b in &self.regions[i + 1..] {
                if a.overlaps(b) {
                    return Err(format!("regions {} and {} overlap", a.kind, b.kind));
                }
            }
        }
        let ram = self.region(RegionKind::Ram).ok_or("no RAM region")?;
        if self.stack_top != ram.end() {
            return Err(format!(
                "stack top {:#x} is not the end of RAM {:#x}",
                self.stack_top,
                ram.end()
            ));
        }
        let rom = self.region(RegionKind::Rom).ok_or("no ROM region")?;
        if !rom.contains(self.es_base) {
            return Err(format!("ES base {:#x} outside ROM", self.es_base));
        }
        if self
            .regions
            .iter()
            .any(|r| r.end() > advm_isa::ADDR_SPACE_BYTES)
        {
            return Err("region exceeds the 20-bit address space".to_owned());
        }
        Ok(())
    }
}

impl Default for MemoryMap {
    fn default() -> Self {
        Self::sc88()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_map_is_valid() {
        MemoryMap::sc88().validate().unwrap();
    }

    #[test]
    fn region_lookup() {
        let map = MemoryMap::sc88();
        assert_eq!(map.region_at(0x100).unwrap().kind(), RegionKind::Rom);
        assert_eq!(map.region_at(0x4_0000).unwrap().kind(), RegionKind::Ram);
        assert_eq!(map.region_at(0x8_FFFF).unwrap().kind(), RegionKind::Nvm);
        assert_eq!(map.region_at(0xE_0100).unwrap().kind(), RegionKind::Mmio);
        assert!(
            map.region_at(0x7_0000).is_none(),
            "hole between RAM and NVM"
        );
    }

    #[test]
    fn stack_top_is_ram_end() {
        let map = MemoryMap::sc88();
        assert_eq!(map.stack_top(), map.region(RegionKind::Ram).unwrap().end());
    }

    #[test]
    fn es_base_in_rom() {
        let map = MemoryMap::sc88();
        assert!(map.region(RegionKind::Rom).unwrap().contains(map.es_base()));
    }

    #[test]
    fn whole_map_fits_isa_address_space() {
        let map = MemoryMap::sc88();
        for region in map.regions() {
            assert!(region.end() <= advm_isa::ADDR_SPACE_BYTES);
        }
    }

    #[test]
    fn region_contains_is_half_open() {
        let r = Region::new(RegionKind::Ram, 0x100, 0x100);
        assert!(!r.contains(0xFF));
        assert!(r.contains(0x100));
        assert!(r.contains(0x1FF));
        assert!(!r.contains(0x200));
    }
}
