//! # advm-gen — the coverage-driven scenario engine
//!
//! §2 of the paper, looking forward: *"this test environment structure
//! provides the ability to generate constrained-random instances of the
//! 'Global Defines' file from a higher level language such as Specman e,
//! Perl or even C/Cpp."* Rust is that higher-level language here — and
//! this crate closes the loop the paper only gestures at: stimulus is
//! not just drawn at random, it is *planned*, *measured* and *refined*.
//!
//! * [`GlobalsConstraints`] describes the legal stimulus space;
//!   [`GlobalsConstraints::instantiate`] draws one seeded instance.
//! * A [`Scenario`] is a named, seeded, self-describing unit of
//!   stimulus: the rendered `Globals.inc`, the structured values behind
//!   it and its provenance ([`ScenarioMeta`]).
//! * [`ScenarioSource`] is the extension point with three built-in
//!   families: [`Directed`] (from a test plan), [`ConstrainedRandom`]
//!   (uniform draws) and [`CoverageDirected`] (draws biased toward the
//!   holes a prior campaign measured, via [`CoverageFeedback`]).
//! * A [`ScenarioEngine`] batches sources into a deterministic
//!   [`StimulusPlan`]; [`PageCoverage`] measures what a batch exercised.
//!
//! The old free function [`generate`] remains as a deprecated shim with
//! byte-identical output.
//!
//! ```
//! use advm_gen::{ConstrainedRandom, CoverageDirected, CoverageFeedback,
//!                GlobalsConstraints, PageCoverage, ScenarioEngine};
//! use advm_soc::{DerivativeId, PlatformId};
//!
//! # fn main() -> Result<(), advm_gen::ConstraintError> {
//! let constraints = GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
//!
//! // Round 1: uniform constrained-random stimulus.
//! let plan = ScenarioEngine::new(7)
//!     .source(ConstrainedRandom::new(constraints.clone()))
//!     .batch(4)
//!     .plan()?;
//! let mut coverage = PageCoverage::new(&constraints);
//! for scenario in plan.scenarios() {
//!     coverage.record(scenario.globals());
//! }
//!
//! // Round 2: chase the pages round 1 missed.
//! let feedback = CoverageFeedback::new().with_pages_seen(coverage.seen().iter().copied());
//! let refined = ScenarioEngine::new(8)
//!     .source(CoverageDirected::new(constraints, feedback))
//!     .batch(4)
//!     .plan()?;
//! let before = coverage.pages_hit();
//! for scenario in refined.scenarios() {
//!     coverage.record(scenario.globals());
//! }
//! assert!(coverage.pages_hit() > before, "refinement must find new pages");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraints;
mod coverage;
mod engine;
mod scenario;
mod source;

#[allow(deprecated)]
pub use constraints::generate;
pub use constraints::{ConstraintError, GlobalsConstraints};
pub use coverage::{CoverageFeedback, PageCoverage};
pub use engine::{derive_seed, ScenarioEngine, StimulusPlan};
pub use scenario::{Scenario, ScenarioKind, ScenarioMeta};
pub use source::{ConstrainedRandom, CoverageDirected, Directed, ScenarioSource};
