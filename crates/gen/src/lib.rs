//! # advm-gen — constrained-random `Globals.inc` generation
//!
//! §2 of the paper, looking forward: *"this test environment structure
//! provides the ability to generate constrained-random instances of the
//! 'Global Defines' file from a higher level language such as Specman e,
//! Perl or even C/Cpp."* Rust is that higher-level language here.
//!
//! A [`GlobalsConstraints`] describes the legal space (page ranges,
//! forbidden pages, extra numeric knobs); [`generate`] draws a seeded,
//! reproducible instance; [`PageCoverage`] tracks how much of the page
//! space a batch of instances has exercised — the coverage argument that
//! motivates constrained-random generation in the first place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::ops::RangeInclusive;

use advm_soc::{Derivative, DerivativeId, GlobalsFile, GlobalsSpec, PlatformId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The constraint model over a globals instance.
#[derive(Debug, Clone)]
pub struct GlobalsConstraints {
    /// Target derivative (bounds the page space).
    pub derivative: DerivativeId,
    /// Target platform.
    pub platform: PlatformId,
    /// How many `TESTn_TARGET_PAGE` values to draw.
    pub test_page_count: usize,
    /// Inclusive page range to draw from (clamped to the derivative's
    /// page count).
    pub page_range: RangeInclusive<u32>,
    /// Pages that must not be drawn (e.g. reserved system pages).
    pub forbidden_pages: Vec<u32>,
    /// Extra numeric knobs: `(define name, inclusive range)`.
    pub extra_knobs: Vec<(String, RangeInclusive<u32>)>,
}

impl GlobalsConstraints {
    /// Constraints spanning the derivative's whole page space, two test
    /// pages, no extra knobs.
    pub fn new(derivative: DerivativeId, platform: PlatformId) -> Self {
        let pages = Derivative::from_id(derivative).page_count();
        Self {
            derivative,
            platform,
            test_page_count: 2,
            page_range: 0..=(pages - 1),
            forbidden_pages: Vec::new(),
            extra_knobs: Vec::new(),
        }
    }

    /// Sets the number of test pages.
    pub fn with_test_page_count(mut self, count: usize) -> Self {
        self.test_page_count = count;
        self
    }

    /// Restricts the page range.
    pub fn with_page_range(mut self, range: RangeInclusive<u32>) -> Self {
        self.page_range = range;
        self
    }

    /// Forbids specific pages.
    pub fn with_forbidden_pages(mut self, pages: Vec<u32>) -> Self {
        self.forbidden_pages = pages;
        self
    }

    /// Adds a random knob rendered as an extra define.
    pub fn with_knob(mut self, name: impl Into<String>, range: RangeInclusive<u32>) -> Self {
        self.extra_knobs.push((name.into(), range));
        self
    }

    /// The set of pages an instance may legally draw.
    pub fn legal_pages(&self) -> Vec<u32> {
        let max = Derivative::from_id(self.derivative).page_count();
        self.page_range
            .clone()
            .filter(|p| *p < max && !self.forbidden_pages.contains(p))
            .collect()
    }
}

/// Error returned when the constraint space is empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmptyConstraintError;

impl fmt::Display for EmptyConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("constraint space contains no legal pages")
    }
}

impl std::error::Error for EmptyConstraintError {}

/// Draws one seeded globals instance. The same `(constraints, seed)` pair
/// always produces the same file — regressions with random configuration
/// must be reproducible.
///
/// # Errors
///
/// Fails if the constraints leave no legal page.
pub fn generate(
    constraints: &GlobalsConstraints,
    seed: u64,
) -> Result<GlobalsFile, EmptyConstraintError> {
    let legal = constraints.legal_pages();
    if legal.is_empty() {
        return Err(EmptyConstraintError);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pages: Vec<u32> = (0..constraints.test_page_count)
        .map(|_| legal[rng.gen_range(0..legal.len())])
        .collect();
    let mut spec = GlobalsSpec::new(
        Derivative::from_id(constraints.derivative),
        constraints.platform,
    )
    .with_test_pages(pages)
    .with_extra("RANDOM_SEED_LO", (seed & 0xFFFF_FFFF) as u32)
    .with_extra("RANDOM_SEED_HI", (seed >> 32) as u32);
    for (name, range) in &constraints.extra_knobs {
        let value = rng.gen_range(*range.start()..=*range.end());
        spec = spec.with_extra(name.clone(), value);
    }
    Ok(spec.render())
}

/// Coverage accounting over the page space.
#[derive(Debug, Clone)]
pub struct PageCoverage {
    seen: BTreeSet<u32>,
    space: usize,
}

impl PageCoverage {
    /// Coverage over a constraint model's legal pages.
    pub fn new(constraints: &GlobalsConstraints) -> Self {
        Self {
            seen: BTreeSet::new(),
            space: constraints.legal_pages().len(),
        }
    }

    /// Records the pages an instance exercises.
    pub fn record(&mut self, globals: &GlobalsFile) {
        let count = globals.value("TEST_PAGE_COUNT").unwrap_or(0);
        for i in 1..=count {
            if let Some(page) = globals.value(&format!("TEST{i}_TARGET_PAGE")) {
                self.seen.insert(page);
            }
        }
    }

    /// Distinct pages exercised so far.
    pub fn pages_hit(&self) -> usize {
        self.seen.len()
    }

    /// Coverage ratio in `0.0..=1.0`.
    pub fn ratio(&self) -> f64 {
        if self.space == 0 {
            1.0
        } else {
            self.seen.len() as f64 / self.space as f64
        }
    }

    /// Whether the whole legal space has been exercised.
    pub fn complete(&self) -> bool {
        self.seen.len() >= self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraints() -> GlobalsConstraints {
        GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let c = constraints().with_test_page_count(4);
        let a = generate(&c, 42).unwrap();
        let b = generate(&c, 42).unwrap();
        assert_eq!(a.text(), b.text());
        let other = generate(&c, 43).unwrap();
        assert_ne!(a.text(), other.text());
    }

    #[test]
    fn pages_respect_constraints() {
        let c = constraints()
            .with_test_page_count(16)
            .with_page_range(4..=9)
            .with_forbidden_pages(vec![6]);
        for seed in 0..32 {
            let g = generate(&c, seed).unwrap();
            for i in 1..=16 {
                let page = g.value(&format!("TEST{i}_TARGET_PAGE")).unwrap();
                assert!((4..=9).contains(&page), "seed {seed}: page {page}");
                assert_ne!(page, 6, "seed {seed}: forbidden page drawn");
            }
        }
    }

    #[test]
    fn empty_constraint_space_rejected() {
        let c = constraints()
            .with_page_range(5..=5)
            .with_forbidden_pages(vec![5]);
        assert_eq!(generate(&c, 0), Err(EmptyConstraintError));
    }

    #[test]
    fn knobs_rendered_in_range() {
        let c = constraints().with_knob("MY_KNOB", 10..=20);
        for seed in 0..16 {
            let g = generate(&c, seed).unwrap();
            let v = g.value("MY_KNOB").unwrap();
            assert!((10..=20).contains(&v), "seed {seed}: {v}");
        }
    }

    #[test]
    fn seed_is_recorded_in_the_instance() {
        let g = generate(&constraints(), 0xDEAD_BEEF_CAFE).unwrap();
        assert_eq!(g.value("RANDOM_SEED_LO"), Some(0xBEEF_CAFE));
        assert_eq!(g.value("RANDOM_SEED_HI"), Some(0xDEAD));
    }

    #[test]
    fn coverage_grows_toward_complete() {
        let c = constraints().with_test_page_count(4).with_page_range(0..=7);
        let mut coverage = PageCoverage::new(&c);
        assert_eq!(coverage.pages_hit(), 0);
        let mut seeds = 0;
        while !coverage.complete() && seeds < 1000 {
            coverage.record(&generate(&c, seeds).unwrap());
            seeds += 1;
        }
        assert!(coverage.complete(), "8-page space should saturate quickly");
        assert!((coverage.ratio() - 1.0).abs() < 1e-9);
        assert!(seeds < 100, "took {seeds} seeds to cover 8 pages");
    }

    #[test]
    fn wider_derivative_has_larger_space() {
        let a = GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
        let c = GlobalsConstraints::new(DerivativeId::Sc88C, PlatformId::GoldenModel);
        assert_eq!(a.legal_pages().len(), 32);
        assert_eq!(c.legal_pages().len(), 64);
    }
}
