//! Coverage accounting over the page space, and the feedback record
//! that closes the generate→run→measure→refine loop.

use std::collections::BTreeSet;

use advm_soc::GlobalsFile;

use crate::constraints::GlobalsConstraints;

/// Coverage accounting over the page space.
#[derive(Debug, Clone)]
pub struct PageCoverage {
    seen: BTreeSet<u32>,
    space: usize,
}

impl PageCoverage {
    /// Coverage over a constraint model's legal pages.
    pub fn new(constraints: &GlobalsConstraints) -> Self {
        Self {
            seen: BTreeSet::new(),
            space: constraints.legal_pages().len(),
        }
    }

    /// Records the pages an instance exercises.
    pub fn record(&mut self, globals: &GlobalsFile) {
        let count = globals.value("TEST_PAGE_COUNT").unwrap_or(0);
        for i in 1..=count {
            if let Some(page) = globals.value(&format!("TEST{i}_TARGET_PAGE")) {
                self.seen.insert(page);
            }
        }
    }

    /// Records explicit page numbers.
    pub fn record_pages(&mut self, pages: impl IntoIterator<Item = u32>) {
        self.seen.extend(pages);
    }

    /// The distinct pages exercised so far.
    pub fn seen(&self) -> &BTreeSet<u32> {
        &self.seen
    }

    /// Distinct pages exercised so far.
    pub fn pages_hit(&self) -> usize {
        self.seen.len()
    }

    /// Coverage ratio in `0.0..=1.0`.
    pub fn ratio(&self) -> f64 {
        if self.space == 0 {
            1.0
        } else {
            self.seen.len() as f64 / self.space as f64
        }
    }

    /// Whether the whole legal space has been exercised.
    pub fn complete(&self) -> bool {
        self.seen.len() >= self.space
    }
}

/// Measured coverage fed back into generation — what a
/// [`crate::CoverageDirected`] source biases its sampling against.
///
/// The campaign layer builds this from its `RegisterCoverage` /
/// [`PageCoverage`] reports; keeping the type here (and not depending on
/// the campaign crate) is what lets the generator stay at the bottom of
/// the dependency graph while still closing the loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageFeedback {
    pages_seen: BTreeSet<u32>,
    weak_modules: Vec<String>,
}

impl CoverageFeedback {
    /// An empty feedback record (nothing covered yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the pages prior stimulus already exercised.
    pub fn with_pages_seen(mut self, pages: impl IntoIterator<Item = u32>) -> Self {
        self.pages_seen.extend(pages);
        self
    }

    /// Records modules whose register coverage still has holes, in
    /// priority order (worst first). Duplicates are dropped, keeping the
    /// first occurrence: escape-driven audits fold several fault sites
    /// into the same module, and a repeated entry would bias
    /// [`crate::CoverageDirected`]'s rotation toward it.
    pub fn with_weak_modules<S: Into<String>>(
        mut self,
        modules: impl IntoIterator<Item = S>,
    ) -> Self {
        for module in modules {
            let module = module.into();
            if !self.weak_modules.contains(&module) {
                self.weak_modules.push(module);
            }
        }
        self
    }

    /// Pages prior stimulus already exercised.
    pub fn pages_seen(&self) -> &BTreeSet<u32> {
        &self.pages_seen
    }

    /// Modules with remaining register-coverage holes, worst first.
    pub fn weak_modules(&self) -> &[String] {
        &self.weak_modules
    }
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, PlatformId};

    use super::*;

    fn constraints() -> GlobalsConstraints {
        GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
    }

    #[test]
    fn coverage_grows_toward_complete() {
        let c = constraints().with_test_page_count(4).with_page_range(0..=7);
        let mut coverage = PageCoverage::new(&c);
        assert_eq!(coverage.pages_hit(), 0);
        let mut seeds = 0;
        while !coverage.complete() && seeds < 1000 {
            coverage.record(&c.instantiate(seeds).unwrap());
            seeds += 1;
        }
        assert!(coverage.complete(), "8-page space should saturate quickly");
        assert!((coverage.ratio() - 1.0).abs() < 1e-9);
        assert!(seeds < 100, "took {seeds} seeds to cover 8 pages");
    }

    #[test]
    fn explicit_pages_count_toward_coverage() {
        let c = constraints().with_page_range(0..=3);
        let mut coverage = PageCoverage::new(&c);
        coverage.record_pages([0, 2]);
        assert_eq!(coverage.pages_hit(), 2);
        assert_eq!(coverage.seen().iter().copied().collect::<Vec<_>>(), [0, 2]);
    }

    #[test]
    fn feedback_accumulates() {
        let f = CoverageFeedback::new()
            .with_pages_seen([1, 2, 2, 3])
            .with_weak_modules(["UART", "TIMER"]);
        assert_eq!(f.pages_seen().len(), 3);
        assert_eq!(f.weak_modules(), ["UART", "TIMER"]);
    }

    #[test]
    fn weak_modules_dedupe_preserving_priority_order() {
        // Escape-driven feedback folds several fault sites into the same
        // module; the rotation must not be biased by repeats.
        let f = CoverageFeedback::new()
            .with_weak_modules(["PAGE", "UART", "PAGE"])
            .with_weak_modules(["UART", "TB"]);
        assert_eq!(f.weak_modules(), ["PAGE", "UART", "TB"]);
    }
}
