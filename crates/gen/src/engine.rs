//! The scenario engine: deterministic batching of scenario sources into
//! a [`StimulusPlan`].
//!
//! The engine mirrors the campaign builder from the core crate: add
//! sources fluently, pick a batch size and a master seed, call
//! [`ScenarioEngine::plan`]. Planning is pure — every per-scenario seed
//! is derived from `(master seed, source index, scenario index)` with a
//! SplitMix64-style mixer, so the same `(sources, master seed)` pair
//! yields a byte-identical batch whenever and wherever it is planned,
//! independent of how many workers later execute it.

use crate::constraints::ConstraintError;
use crate::scenario::Scenario;
use crate::source::ScenarioSource;

/// Derives a per-scenario seed from the master seed and the scenario's
/// position in the plan (SplitMix64 finalizer).
///
/// Public so other seeded generators (the `advm-fuzz` program source)
/// can share the exact discipline: seeds depend only on `(master,
/// source, index)`, never on which worker draws the scenario, so batches
/// are byte-identical regardless of execution order or worker count.
pub fn derive_seed(master: u64, source: usize, index: usize) -> u64 {
    let mut z = master
        ^ (source as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (index as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builder for deterministic scenario batches.
pub struct ScenarioEngine {
    sources: Vec<Box<dyn ScenarioSource>>,
    master_seed: u64,
    batch: usize,
}

impl std::fmt::Debug for ScenarioEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEngine")
            .field("sources", &self.sources.len())
            .field("master_seed", &self.master_seed)
            .field("batch", &self.batch)
            .finish()
    }
}

impl ScenarioEngine {
    /// Default number of scenarios an unbounded source contributes.
    pub const DEFAULT_BATCH: usize = 8;

    /// An engine with no sources yet, drawing under `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Self {
            sources: Vec::new(),
            master_seed,
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// Adds a scenario source.
    pub fn source(mut self, source: impl ScenarioSource + 'static) -> Self {
        self.sources.push(Box::new(source));
        self
    }

    /// Sets how many scenarios each *unbounded* source contributes
    /// (minimum 1). Finite sources (directed plans) always contribute
    /// exactly their entry count.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The master seed every per-scenario seed derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Draws the whole batch: each finite source contributes all its
    /// scenarios, each unbounded source contributes `batch` draws, in
    /// source order. Deterministic in `(sources, master seed)`.
    ///
    /// # Errors
    ///
    /// Propagates the first unsatisfiable constraint model.
    pub fn plan(&self) -> Result<StimulusPlan, ConstraintError> {
        let mut scenarios: Vec<Scenario> = Vec::new();
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (si, source) in self.sources.iter().enumerate() {
            let count = source.len_hint().unwrap_or(self.batch);
            for i in 0..count {
                let mut scenario = source.draw(i, derive_seed(self.master_seed, si, i))?;
                // Two sources of the same family would mint colliding
                // names (e.g. two `CR_000`); qualify by source position,
                // then by a counter — duplicate test-plan ids can make
                // even the source-qualified name collide.
                if !used.insert(scenario.name().to_owned()) {
                    let base = format!("{}_S{si}", scenario.name());
                    let mut qualified = base.clone();
                    let mut n = 1;
                    while !used.insert(qualified.clone()) {
                        qualified = format!("{base}_{n}");
                        n += 1;
                    }
                    scenario.rename(qualified);
                }
                scenarios.push(scenario);
            }
        }
        Ok(StimulusPlan {
            master_seed: self.master_seed,
            scenarios,
        })
    }
}

/// A deterministically planned batch of scenarios, ready to hand to a
/// campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StimulusPlan {
    master_seed: u64,
    scenarios: Vec<Scenario>,
}

impl StimulusPlan {
    /// The master seed the batch was derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The planned scenarios, in draw order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Consumes the plan into its scenarios.
    pub fn into_scenarios(self) -> Vec<Scenario> {
        self.scenarios
    }

    /// Number of planned scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, PlatformId};

    use crate::{
        ConstrainedRandom, CoverageDirected, CoverageFeedback, Directed, GlobalsConstraints,
    };

    use super::*;

    fn constraints() -> GlobalsConstraints {
        GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
    }

    fn engine(seed: u64) -> ScenarioEngine {
        ScenarioEngine::new(seed)
            .source(Directed::new(
                constraints(),
                "PAGE",
                [("TEST_A", "a"), ("TEST_B", "b")],
            ))
            .source(ConstrainedRandom::new(constraints()))
            .batch(4)
    }

    #[test]
    fn plans_replay_byte_identically() {
        let a = engine(99).plan().unwrap();
        let b = engine(99).plan().unwrap();
        assert_eq!(a, b);
        let texts: Vec<String> = a.scenarios().iter().map(|s| s.globals().text()).collect();
        let texts_b: Vec<String> = b.scenarios().iter().map(|s| s.globals().text()).collect();
        assert_eq!(texts, texts_b);
    }

    #[test]
    fn finite_sources_contribute_all_entries_unbounded_the_batch() {
        let plan = engine(1).plan().unwrap();
        assert_eq!(plan.len(), 2 + 4);
        assert_eq!(plan.scenarios()[0].name(), "DIR_A");
        assert_eq!(plan.scenarios()[2].name(), "CR_000");
    }

    #[test]
    fn master_seed_changes_the_random_half_only() {
        let a = engine(1).plan().unwrap();
        let b = engine(2).plan().unwrap();
        // Directed scenarios are seed-independent in their stimulus…
        assert_eq!(a.scenarios()[0].test_pages(), b.scenarios()[0].test_pages());
        // …random scenarios are not.
        assert_ne!(a.scenarios()[2].test_pages(), b.scenarios()[2].test_pages());
    }

    #[test]
    fn colliding_names_are_qualified_by_source() {
        let plan = ScenarioEngine::new(7)
            .source(ConstrainedRandom::new(constraints()))
            .source(ConstrainedRandom::new(
                constraints().with_test_page_count(3),
            ))
            .batch(1)
            .plan()
            .unwrap();
        assert_eq!(plan.scenarios()[0].name(), "CR_000");
        assert_eq!(plan.scenarios()[1].name(), "CR_000_S1");
    }

    #[test]
    fn repeated_collisions_within_one_source_stay_unique() {
        // A test plan with one id repeated three times draws three
        // same-named scenarios from source index 0; every qualified name
        // must still be distinct.
        let plan = ScenarioEngine::new(5)
            .source(Directed::new(
                constraints(),
                "M",
                [("TEST_A", "1"), ("TEST_A", "2"), ("TEST_A", "3")],
            ))
            .plan()
            .unwrap();
        let names: std::collections::HashSet<&str> =
            plan.scenarios().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 3, "{:?}", plan.scenarios());
    }

    #[test]
    fn coverage_directed_sources_plan_too() {
        let feedback = CoverageFeedback::new().with_pages_seen(0..16u32);
        let plan = ScenarioEngine::new(3)
            .source(CoverageDirected::new(constraints(), feedback))
            .batch(3)
            .plan()
            .unwrap();
        assert_eq!(plan.len(), 3);
        for s in plan.scenarios() {
            for page in s.test_pages() {
                assert!(*page >= 16, "must chase the unseen half: {page}");
            }
        }
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)]
    fn plan_errors_on_unsatisfiable_sources() {
        let err = ScenarioEngine::new(0)
            .source(ConstrainedRandom::new(constraints().with_page_range(9..=0)))
            .plan()
            .unwrap_err();
        assert_eq!(err, crate::ConstraintError::EmptyPageSpace);
    }
}
