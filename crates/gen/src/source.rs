//! Scenario sources — the three ways stimulus enters a plan.
//!
//! * [`Directed`] turns a test plan into scenarios: the paper's directed
//!   testing, one deterministic scenario per plan entry.
//! * [`ConstrainedRandom`] draws uniformly from a
//!   [`GlobalsConstraints`] model — §2's "constrained-random instances
//!   of the 'Global Defines' file".
//! * [`CoverageDirected`] consumes a prior campaign's measured coverage
//!   ([`CoverageFeedback`]) and biases its draws toward untouched pages
//!   and weakly covered modules — the closed loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::constraints::{ConstraintError, GlobalsConstraints};
use crate::coverage::CoverageFeedback;
use crate::scenario::{Scenario, ScenarioKind, ScenarioMeta};

/// A family of scenarios a [`crate::ScenarioEngine`] can draw from.
///
/// Sources are deterministic: `draw(index, seed)` must return the same
/// scenario for the same arguments, whatever happened before — the
/// engine derives per-scenario seeds from its master seed, so whole
/// plans replay byte-identically.
pub trait ScenarioSource {
    /// Short label for reports (e.g. `"constrained-random"`).
    fn label(&self) -> &str;

    /// `Some(n)` when the source is finite (a directed plan has exactly
    /// one scenario per entry); `None` when it can draw indefinitely.
    fn len_hint(&self) -> Option<usize>;

    /// Draws the `index`-th scenario under `seed`.
    ///
    /// # Errors
    ///
    /// Propagates an unsatisfiable constraint model.
    fn draw(&self, index: usize, seed: u64) -> Result<Scenario, ConstraintError>;
}

/// Directed scenarios derived from a test plan: one deterministic
/// scenario per plan entry.
///
/// The generator crate sits below the methodology engine in the
/// dependency graph, so it accepts the plan as `(id, description)`
/// pairs or as the paper's grep-able plain text (`TESTPLAN.TXT`); the
/// engine crate bridges its structured `Testplan` type here.
#[derive(Debug, Clone)]
pub struct Directed {
    constraints: GlobalsConstraints,
    module: String,
    entries: Vec<(String, String)>,
}

impl Directed {
    /// A directed source over explicit `(test id, description)` entries.
    pub fn new<I, S, D>(
        constraints: GlobalsConstraints,
        module: impl Into<String>,
        entries: I,
    ) -> Self
    where
        I: IntoIterator<Item = (S, D)>,
        S: Into<String>,
        D: Into<String>,
    {
        Self {
            constraints,
            module: module.into(),
            entries: entries
                .into_iter()
                .map(|(id, desc)| (id.into(), desc.into()))
                .collect(),
        }
    }

    /// Parses the plain-text `TESTPLAN.TXT` form (`TESTPLAN for M` header,
    /// `TEST_X: description` lines) into a directed source.
    pub fn from_testplan_text(constraints: GlobalsConstraints, text: &str) -> Self {
        let mut module = String::new();
        let mut entries = Vec::new();
        for line in text.lines() {
            if let Some(m) = line.strip_prefix("TESTPLAN for ") {
                module = m.trim().to_owned();
            } else if let Some((id, desc)) = line.split_once(':') {
                if id.starts_with("TEST_") {
                    entries.push((id.trim().to_owned(), desc.trim().to_owned()));
                }
            }
        }
        Self {
            constraints,
            module,
            entries,
        }
    }

    /// The plan entries this source covers.
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }
}

impl ScenarioSource for Directed {
    fn label(&self) -> &str {
        "directed"
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.entries.len())
    }

    fn draw(&self, index: usize, seed: u64) -> Result<Scenario, ConstraintError> {
        self.constraints.validate()?;
        if self.entries.is_empty() {
            return Err(ConstraintError::EmptyTestplan);
        }
        let (id, description) = &self.entries[index % self.entries.len()];
        let legal = self.constraints.legal_pages();
        // Deterministic page targets in the style of the paper's default
        // plans: entry i strides through the legal space, no RNG at all.
        let pages: Vec<u32> = (0..self.constraints.test_page_count)
            .map(|j| legal[(index * 7 + j * 3 + 1) % legal.len()])
            .collect();
        let mut knobs = vec![
            ("RANDOM_SEED_LO".to_owned(), (seed & 0xFFFF_FFFF) as u32),
            ("RANDOM_SEED_HI".to_owned(), (seed >> 32) as u32),
        ];
        // Directed scenarios pin every knob to its range start: directed
        // testing is about reproducing the plan, not exploring.
        for (name, range) in &self.constraints.extra_knobs {
            knobs.push((name.clone(), *range.start()));
        }
        let name = format!("DIR_{}", id.strip_prefix("TEST_").unwrap_or(id));
        Ok(Scenario::new(
            ScenarioMeta {
                name,
                kind: ScenarioKind::Directed,
                seed,
                detail: format!("testplan {}: {id} — {description}", self.module),
            },
            self.constraints.derivative,
            self.constraints.platform,
            pages,
            knobs,
            Vec::new(),
        ))
    }
}

/// Uniform constrained-random scenarios — subsumes the old bare
/// `generate()` free function, one scenario per draw.
#[derive(Debug, Clone)]
pub struct ConstrainedRandom {
    constraints: GlobalsConstraints,
}

impl ConstrainedRandom {
    /// A random source over a constraint model.
    pub fn new(constraints: GlobalsConstraints) -> Self {
        Self { constraints }
    }
}

impl ScenarioSource for ConstrainedRandom {
    fn label(&self) -> &str {
        "constrained-random"
    }

    fn len_hint(&self) -> Option<usize> {
        None
    }

    fn draw(&self, index: usize, seed: u64) -> Result<Scenario, ConstraintError> {
        let draw = self.constraints.sample(seed)?;
        Ok(Scenario::new(
            ScenarioMeta {
                name: format!("CR_{index:03}"),
                kind: ScenarioKind::ConstrainedRandom,
                seed,
                detail: format!(
                    "uniform draw over {} legal pages",
                    self.constraints.legal_pages().len()
                ),
            },
            draw.derivative,
            draw.platform,
            draw.pages,
            draw.knobs,
            Vec::new(),
        ))
    }
}

/// Coverage-directed scenarios: random draws biased toward the holes a
/// prior campaign measured.
///
/// Page sampling prefers pages absent from
/// [`CoverageFeedback::pages_seen`] (without replacement inside one
/// scenario), falling back to uniform draws once the unseen pool is
/// exhausted; each scenario additionally targets up to
/// [`CoverageDirected::MODULES_PER_SCENARIO`] weakly covered modules,
/// rotating through the feedback list so a batch spreads across all of
/// them.
#[derive(Debug, Clone)]
pub struct CoverageDirected {
    constraints: GlobalsConstraints,
    feedback: CoverageFeedback,
}

impl CoverageDirected {
    /// How many weak modules one scenario stimulates.
    pub const MODULES_PER_SCENARIO: usize = 2;

    /// A coverage-chasing source over a constraint model and the
    /// feedback from a prior round.
    pub fn new(constraints: GlobalsConstraints, feedback: CoverageFeedback) -> Self {
        Self {
            constraints,
            feedback,
        }
    }

    /// The feedback this source biases against.
    pub fn feedback(&self) -> &CoverageFeedback {
        &self.feedback
    }
}

impl ScenarioSource for CoverageDirected {
    fn label(&self) -> &str {
        "coverage-directed"
    }

    fn len_hint(&self) -> Option<usize> {
        None
    }

    fn draw(&self, index: usize, seed: u64) -> Result<Scenario, ConstraintError> {
        self.constraints.validate()?;
        let legal = self.constraints.legal_pages();
        let mut unseen: Vec<u32> = legal
            .iter()
            .copied()
            .filter(|p| !self.feedback.pages_seen().contains(p))
            .collect();
        let initial_unseen = unseen.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fresh = 0usize;
        let pages: Vec<u32> = (0..self.constraints.test_page_count)
            .map(|_| {
                if unseen.is_empty() {
                    legal[rng.gen_range(0..legal.len())]
                } else {
                    fresh += 1;
                    unseen.swap_remove(rng.gen_range(0..unseen.len()))
                }
            })
            .collect();
        let mut knobs = vec![
            ("RANDOM_SEED_LO".to_owned(), (seed & 0xFFFF_FFFF) as u32),
            ("RANDOM_SEED_HI".to_owned(), (seed >> 32) as u32),
        ];
        for (name, range) in &self.constraints.extra_knobs {
            knobs.push((name.clone(), rng.gen_range(range.clone())));
        }
        // Rotate through the weak modules so a batch of scenarios covers
        // all of them even though each scenario targets only a couple.
        let weak = self.feedback.weak_modules();
        let mut target_modules: Vec<String> = Vec::new();
        for k in 0..weak.len().min(Self::MODULES_PER_SCENARIO) {
            let module = &weak[(index * Self::MODULES_PER_SCENARIO + k) % weak.len()];
            if !target_modules.contains(module) {
                target_modules.push(module.clone());
            }
        }
        let detail = format!(
            "chasing {fresh} of {initial_unseen} unseen page(s); modules [{}]",
            target_modules.join(", "),
        );
        Ok(Scenario::new(
            ScenarioMeta {
                name: format!("COV_{index:03}"),
                kind: ScenarioKind::CoverageDirected,
                seed,
                detail,
            },
            self.constraints.derivative,
            self.constraints.platform,
            pages,
            knobs,
            target_modules,
        ))
    }
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, PlatformId};

    use super::*;

    fn constraints() -> GlobalsConstraints {
        GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
    }

    #[test]
    fn directed_covers_every_entry_deterministically() {
        let d = Directed::new(
            constraints(),
            "PAGE",
            [("TEST_A", "first"), ("TEST_B", "second")],
        );
        assert_eq!(d.len_hint(), Some(2));
        let a1 = d.draw(0, 9).unwrap();
        let a2 = d.draw(0, 9).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(a1.name(), "DIR_A");
        assert_eq!(a1.kind(), ScenarioKind::Directed);
        assert!(a1.meta().detail.contains("TEST_A"));
        let b = d.draw(1, 9).unwrap();
        assert_ne!(a1.test_pages(), b.test_pages());
    }

    #[test]
    fn directed_parses_plain_text_testplans() {
        let text = "TESTPLAN for UART\n========\nTEST_UART_LOOPBACK: loopback echo\nnotes: n/a\n";
        let d = Directed::from_testplan_text(constraints(), text);
        assert_eq!(
            d.entries(),
            [("TEST_UART_LOOPBACK".to_owned(), "loopback echo".to_owned())]
        );
        let s = d.draw(0, 0).unwrap();
        assert!(s.meta().detail.contains("testplan UART"));
    }

    #[test]
    fn constrained_random_matches_bare_instantiation() {
        let c = constraints().with_test_page_count(4).with_knob("K", 1..=9);
        let s = ConstrainedRandom::new(c.clone()).draw(3, 77).unwrap();
        assert_eq!(s.globals().text(), c.instantiate(77).unwrap().text());
        assert_eq!(s.name(), "CR_003");
    }

    #[test]
    fn coverage_directed_prefers_unseen_pages() {
        let c = constraints().with_test_page_count(4).with_page_range(0..=9);
        // Everything but pages 3 and 8 already seen.
        let feedback =
            CoverageFeedback::new().with_pages_seen((0..=9u32).filter(|p| *p != 3 && *p != 8));
        let source = CoverageDirected::new(c, feedback);
        for seed in 0..8 {
            let s = source.draw(seed as usize, seed).unwrap();
            assert!(
                s.test_pages().contains(&3) && s.test_pages().contains(&8),
                "seed {seed}: {:?} must drain the unseen pool first",
                s.test_pages()
            );
        }
    }

    #[test]
    fn coverage_directed_rotates_weak_modules() {
        let c = constraints();
        let feedback = CoverageFeedback::new().with_weak_modules(["UART", "TIMER", "NVMC", "CRC"]);
        let source = CoverageDirected::new(c, feedback);
        let a = source.draw(0, 1).unwrap();
        let b = source.draw(1, 2).unwrap();
        assert_eq!(a.target_modules(), ["UART", "TIMER"]);
        assert_eq!(b.target_modules(), ["NVMC", "CRC"]);
    }

    #[test]
    fn coverage_directed_falls_back_to_uniform_when_saturated() {
        let c = constraints().with_page_range(0..=3).with_test_page_count(8);
        let feedback = CoverageFeedback::new().with_pages_seen(0..=3u32);
        let s = CoverageDirected::new(c, feedback).draw(0, 5).unwrap();
        assert_eq!(s.test_pages().len(), 8);
        assert!(s.test_pages().iter().all(|p| *p <= 3));
    }

    #[test]
    fn directed_with_no_entries_errors_instead_of_panicking() {
        let empty = Directed::from_testplan_text(constraints(), "TESTPLAN for M\nnotes only\n");
        assert_eq!(empty.draw(0, 0), Err(crate::ConstraintError::EmptyTestplan));
        assert_eq!(empty.len_hint(), Some(0));
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)]
    fn sources_propagate_constraint_errors() {
        let empty = constraints().with_page_range(1..=0);
        assert!(ConstrainedRandom::new(empty.clone()).draw(0, 0).is_err());
        assert!(
            CoverageDirected::new(empty.clone(), CoverageFeedback::new())
                .draw(0, 0)
                .is_err()
        );
        assert!(Directed::new(empty, "M", [("TEST_X", "x")])
            .draw(0, 0)
            .is_err());
    }
}
