//! Constraint model over a `Globals.inc` instance and single-instance
//! sampling.
//!
//! [`GlobalsConstraints`] describes the legal stimulus space (page
//! ranges, forbidden pages, extra numeric knobs); [`GlobalsConstraints::instantiate`]
//! draws one seeded instance. The scenario engine ([`crate::ScenarioEngine`])
//! builds on the same sampler, so a directed, a constrained-random and a
//! coverage-directed scenario all render through one code path.

use std::fmt;
use std::ops::RangeInclusive;

use advm_soc::{Derivative, DerivativeId, GlobalsFile, GlobalsSpec, PlatformId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The constraint model over a globals instance.
#[derive(Debug, Clone)]
pub struct GlobalsConstraints {
    /// Target derivative (bounds the page space).
    pub derivative: DerivativeId,
    /// Target platform.
    pub platform: PlatformId,
    /// How many `TESTn_TARGET_PAGE` values to draw.
    pub test_page_count: usize,
    /// Inclusive page range to draw from (clamped to the derivative's
    /// page count).
    pub page_range: RangeInclusive<u32>,
    /// Pages that must not be drawn (e.g. reserved system pages).
    pub forbidden_pages: Vec<u32>,
    /// Extra numeric knobs: `(define name, inclusive range)`.
    pub extra_knobs: Vec<(String, RangeInclusive<u32>)>,
}

impl GlobalsConstraints {
    /// Constraints spanning the derivative's whole page space, two test
    /// pages, no extra knobs.
    pub fn new(derivative: DerivativeId, platform: PlatformId) -> Self {
        let pages = Derivative::from_id(derivative).page_count();
        Self {
            derivative,
            platform,
            test_page_count: 2,
            page_range: 0..=(pages - 1),
            forbidden_pages: Vec::new(),
            extra_knobs: Vec::new(),
        }
    }

    /// Sets the number of test pages.
    pub fn with_test_page_count(mut self, count: usize) -> Self {
        self.test_page_count = count;
        self
    }

    /// Restricts the page range.
    pub fn with_page_range(mut self, range: RangeInclusive<u32>) -> Self {
        self.page_range = range;
        self
    }

    /// Forbids specific pages.
    pub fn with_forbidden_pages(mut self, pages: Vec<u32>) -> Self {
        self.forbidden_pages = pages;
        self
    }

    /// Adds a random knob rendered as an extra define.
    pub fn with_knob(mut self, name: impl Into<String>, range: RangeInclusive<u32>) -> Self {
        self.extra_knobs.push((name.into(), range));
        self
    }

    /// The set of pages an instance may legally draw.
    pub fn legal_pages(&self) -> Vec<u32> {
        let max = Derivative::from_id(self.derivative).page_count();
        self.page_range
            .clone()
            .filter(|p| *p < max && !self.forbidden_pages.contains(p))
            .collect()
    }

    /// Checks the constraint space is satisfiable: at least one legal
    /// page, and every knob range non-empty.
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a typed [`ConstraintError`].
    pub fn validate(&self) -> Result<(), ConstraintError> {
        if self.legal_pages().is_empty() {
            return Err(ConstraintError::EmptyPageSpace);
        }
        for (name, range) in &self.extra_knobs {
            if range.start() > range.end() {
                return Err(ConstraintError::EmptyKnobRange {
                    name: name.clone(),
                    start: *range.start(),
                    end: *range.end(),
                });
            }
        }
        Ok(())
    }

    /// Draws one seeded globals instance. The same `(constraints, seed)`
    /// pair always produces the same file — regressions with random
    /// configuration must be reproducible.
    ///
    /// # Errors
    ///
    /// Fails if the constraints leave no legal page or a knob range is
    /// empty.
    pub fn instantiate(&self, seed: u64) -> Result<GlobalsFile, ConstraintError> {
        Ok(self.sample(seed)?.render())
    }

    /// Draws one seeded instance as a structured [`StimulusDraw`]
    /// (pages + knob values), which the scenario layer keeps alongside
    /// the rendered file.
    pub(crate) fn sample(&self, seed: u64) -> Result<StimulusDraw, ConstraintError> {
        self.validate()?;
        let legal = self.legal_pages();
        // This draw order is a compatibility contract: pages first, then
        // knobs in declaration order, all from one SplitMix64 stream —
        // the deprecated `generate()` shim promises byte-identical output
        // for the old `(constraints, seed)` signature.
        let mut rng = StdRng::seed_from_u64(seed);
        let pages: Vec<u32> = (0..self.test_page_count)
            .map(|_| legal[rng.gen_range(0..legal.len())])
            .collect();
        let mut knobs = vec![
            ("RANDOM_SEED_LO".to_owned(), (seed & 0xFFFF_FFFF) as u32),
            ("RANDOM_SEED_HI".to_owned(), (seed >> 32) as u32),
        ];
        for (name, range) in &self.extra_knobs {
            knobs.push((name.clone(), rng.gen_range(range.clone())));
        }
        Ok(StimulusDraw {
            derivative: self.derivative,
            platform: self.platform,
            pages,
            knobs,
        })
    }
}

/// One structured stimulus draw: the values behind a rendered
/// `Globals.inc` instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StimulusDraw {
    pub derivative: DerivativeId,
    pub platform: PlatformId,
    pub pages: Vec<u32>,
    pub knobs: Vec<(String, u32)>,
}

impl StimulusDraw {
    /// Renders the draw into a complete `Globals.inc`.
    pub fn render(&self) -> GlobalsFile {
        render_globals(self.derivative, self.platform, &self.pages, &self.knobs)
    }
}

/// Renders a globals file from explicit stimulus values (shared by the
/// sampler and [`crate::Scenario::globals_for`]).
pub(crate) fn render_globals(
    derivative: DerivativeId,
    platform: PlatformId,
    pages: &[u32],
    knobs: &[(String, u32)],
) -> GlobalsFile {
    let mut spec =
        GlobalsSpec::new(Derivative::from_id(derivative), platform).with_test_pages(pages.to_vec());
    for (name, value) in knobs {
        spec = spec.with_extra(name.clone(), *value);
    }
    spec.render()
}

/// Error returned when a constraint model is unsatisfiable.
///
/// This folds the old `EmptyConstraintError` unit struct into a richer
/// enum: an empty knob range used to panic deep inside the RNG, now it
/// is reported as a typed error naming the knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// Page range minus forbidden pages leaves nothing to draw.
    EmptyPageSpace,
    /// A `with_knob` range is empty (`start > end`).
    EmptyKnobRange {
        /// The knob's define name.
        name: String,
        /// The (inverted) range start.
        start: u32,
        /// The (inverted) range end.
        end: u32,
    },
    /// A directed source has no test-plan entries to draw from.
    EmptyTestplan,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::EmptyPageSpace => {
                f.write_str("constraint space contains no legal pages")
            }
            ConstraintError::EmptyKnobRange { name, start, end } => {
                write!(f, "knob `{name}` has an empty range ({start}..={end})")
            }
            ConstraintError::EmptyTestplan => {
                f.write_str("directed source has no test-plan entries")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Draws one seeded globals instance.
///
/// Deprecated shim over [`GlobalsConstraints::instantiate`]; output is
/// byte-identical for the old `(constraints, seed)` call signature. New
/// code should build a [`crate::ScenarioEngine`] (which batches draws,
/// tracks provenance and can chase coverage holes) or call
/// `constraints.instantiate(seed)` for a bare one-off instance.
///
/// # Errors
///
/// Fails if the constraints leave no legal page or a knob range is empty.
#[deprecated(
    since = "0.1.0",
    note = "use GlobalsConstraints::instantiate or ScenarioEngine"
)]
pub fn generate(
    constraints: &GlobalsConstraints,
    seed: u64,
) -> Result<GlobalsFile, ConstraintError> {
    constraints.instantiate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraints() -> GlobalsConstraints {
        GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let c = constraints().with_test_page_count(4);
        let a = c.instantiate(42).unwrap();
        let b = c.instantiate(42).unwrap();
        assert_eq!(a.text(), b.text());
        let other = c.instantiate(43).unwrap();
        assert_ne!(a.text(), other.text());
    }

    #[test]
    fn pages_respect_constraints() {
        let c = constraints()
            .with_test_page_count(16)
            .with_page_range(4..=9)
            .with_forbidden_pages(vec![6]);
        for seed in 0..32 {
            let g = c.instantiate(seed).unwrap();
            for i in 1..=16 {
                let page = g.value(&format!("TEST{i}_TARGET_PAGE")).unwrap();
                assert!((4..=9).contains(&page), "seed {seed}: page {page}");
                assert_ne!(page, 6, "seed {seed}: forbidden page drawn");
            }
        }
    }

    #[test]
    fn empty_constraint_space_rejected() {
        let c = constraints()
            .with_page_range(5..=5)
            .with_forbidden_pages(vec![5]);
        assert_eq!(c.instantiate(0), Err(ConstraintError::EmptyPageSpace));
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)]
    fn empty_knob_range_is_a_typed_error_not_a_panic() {
        // Used to panic inside rng.gen_range; now a typed error naming
        // the offending knob.
        let c = constraints().with_knob("X", 5..=3);
        assert_eq!(
            c.instantiate(0),
            Err(ConstraintError::EmptyKnobRange {
                name: "X".to_owned(),
                start: 5,
                end: 3,
            })
        );
        let message = c.instantiate(0).unwrap_err().to_string();
        assert!(message.contains("`X`"), "{message}");
        assert!(message.contains("5..=3"), "{message}");
    }

    #[test]
    fn knobs_rendered_in_range() {
        let c = constraints().with_knob("MY_KNOB", 10..=20);
        for seed in 0..16 {
            let g = c.instantiate(seed).unwrap();
            let v = g.value("MY_KNOB").unwrap();
            assert!((10..=20).contains(&v), "seed {seed}: {v}");
        }
    }

    #[test]
    fn seed_is_recorded_in_the_instance() {
        let g = constraints().instantiate(0xDEAD_BEEF_CAFE).unwrap();
        assert_eq!(g.value("RANDOM_SEED_LO"), Some(0xBEEF_CAFE));
        assert_eq!(g.value("RANDOM_SEED_HI"), Some(0xDEAD));
    }

    #[test]
    fn wider_derivative_has_larger_space() {
        let a = GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
        let c = GlobalsConstraints::new(DerivativeId::Sc88C, PlatformId::GoldenModel);
        assert_eq!(a.legal_pages().len(), 32);
        assert_eq!(c.legal_pages().len(), 64);
    }

    /// The deprecated shim must return byte-identical output for the old
    /// `(constraints, seed)` call signature: same RNG, same draw order,
    /// same rendering.
    #[test]
    fn deprecated_generate_matches_legacy_algorithm() {
        let c = constraints()
            .with_test_page_count(4)
            .with_forbidden_pages(vec![3])
            .with_knob("KNOB_A", 1..=9)
            .with_knob("KNOB_B", 100..=200);
        for seed in [0u64, 42, 0xDEAD_BEEF, u64::MAX] {
            // The legacy algorithm, reimplemented verbatim.
            let legal = c.legal_pages();
            let mut rng = StdRng::seed_from_u64(seed);
            let pages: Vec<u32> = (0..c.test_page_count)
                .map(|_| legal[rng.gen_range(0..legal.len())])
                .collect();
            let mut spec = GlobalsSpec::new(Derivative::from_id(c.derivative), c.platform)
                .with_test_pages(pages)
                .with_extra("RANDOM_SEED_LO", (seed & 0xFFFF_FFFF) as u32)
                .with_extra("RANDOM_SEED_HI", (seed >> 32) as u32);
            for (name, range) in &c.extra_knobs {
                let value = rng.gen_range(*range.start()..=*range.end());
                spec = spec.with_extra(name.clone(), value);
            }
            let legacy = spec.render();

            #[allow(deprecated)]
            let shimmed = generate(&c, seed).unwrap();
            assert_eq!(shimmed.text(), legacy.text(), "seed {seed}");
        }
    }
}
