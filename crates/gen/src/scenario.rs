//! Scenarios — named, seeded, self-describing stimulus.
//!
//! A [`Scenario`] is one unit of stimulus the campaign layer can run:
//! the rendered `Globals.inc` instance, the structured values behind it
//! (test pages, knobs, target modules) and its provenance — which
//! [`crate::ScenarioSource`] drew it, under which seed, chasing what.

use advm_soc::{DerivativeId, GlobalsFile, PlatformId};

use crate::constraints::render_globals;

/// How a scenario came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Derived from a test plan entry — the paper's directed testing.
    Directed,
    /// Drawn uniformly from a constraint model.
    ConstrainedRandom,
    /// Drawn with sampling biased toward coverage holes from a prior
    /// campaign.
    CoverageDirected,
    /// A constrained-random guest *program* over the ISA encoder (the
    /// `advm-fuzz` crate's workload class), rather than a knob file for
    /// the seed suite's programs.
    ProgramFuzz,
}

impl ScenarioKind {
    /// The stable machine-readable name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Directed => "directed",
            ScenarioKind::ConstrainedRandom => "constrained-random",
            ScenarioKind::CoverageDirected => "coverage-directed",
            ScenarioKind::ProgramFuzz => "program-fuzz",
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scenario's provenance record: everything a report needs to say
/// where stimulus came from, without carrying the stimulus itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioMeta {
    /// Unique scenario name (doubles as the synthetic environment name
    /// when the campaign runs it).
    pub name: String,
    /// Which source family drew it.
    pub kind: ScenarioKind,
    /// The per-scenario seed (derived from the plan's master seed).
    pub seed: u64,
    /// Human-readable provenance detail (test-plan entry, targeted
    /// pages/modules, …).
    pub detail: String,
}

/// One named, seeded, self-describing unit of stimulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    meta: ScenarioMeta,
    derivative: DerivativeId,
    platform: PlatformId,
    test_pages: Vec<u32>,
    knobs: Vec<(String, u32)>,
    target_modules: Vec<String>,
    globals: GlobalsFile,
}

impl Scenario {
    /// Builds a scenario from structured stimulus values, rendering its
    /// globals file.
    pub fn new(
        meta: ScenarioMeta,
        derivative: DerivativeId,
        platform: PlatformId,
        test_pages: Vec<u32>,
        knobs: Vec<(String, u32)>,
        target_modules: Vec<String>,
    ) -> Self {
        let globals = render_globals(derivative, platform, &test_pages, &knobs);
        Self {
            meta,
            derivative,
            platform,
            test_pages,
            knobs,
            target_modules,
            globals,
        }
    }

    /// The provenance record.
    pub fn meta(&self) -> &ScenarioMeta {
        &self.meta
    }

    /// The scenario name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// The per-scenario seed.
    pub fn seed(&self) -> u64 {
        self.meta.seed
    }

    /// The source family that drew this scenario.
    pub fn kind(&self) -> ScenarioKind {
        self.meta.kind
    }

    /// Target derivative.
    pub fn derivative(&self) -> DerivativeId {
        self.derivative
    }

    /// Platform the scenario was rendered for.
    pub fn platform(&self) -> PlatformId {
        self.platform
    }

    /// The drawn `TESTn_TARGET_PAGE` values.
    pub fn test_pages(&self) -> &[u32] {
        &self.test_pages
    }

    /// The drawn knob values (including the recorded `RANDOM_SEED_*`
    /// halves).
    pub fn knobs(&self) -> &[(String, u32)] {
        &self.knobs
    }

    /// Modules this scenario deliberately stimulates beyond the page
    /// space (coverage-directed scenarios chase register holes here).
    pub fn target_modules(&self) -> &[String] {
        &self.target_modules
    }

    /// The rendered `Globals.inc` for the scenario's own platform.
    pub fn globals(&self) -> &GlobalsFile {
        &self.globals
    }

    /// Re-renders the scenario's globals for another platform — the
    /// paper's re-targeting rule: same stimulus, regenerated abstraction
    /// layer.
    pub fn globals_for(&self, platform: PlatformId) -> GlobalsFile {
        render_globals(self.derivative, platform, &self.test_pages, &self.knobs)
    }

    /// Returns the scenario under a different name (the engine and the
    /// campaign layer use this to keep names unique across batches).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.meta.name = name.into();
        self
    }

    /// Renames the scenario (the engine dedupes names across sources).
    pub(crate) fn rename(&mut self, name: String) {
        self.meta.name = name;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::new(
            ScenarioMeta {
                name: "CR_000".to_owned(),
                kind: ScenarioKind::ConstrainedRandom,
                seed: 7,
                detail: "demo".to_owned(),
            },
            DerivativeId::Sc88A,
            PlatformId::GoldenModel,
            vec![8, 7],
            vec![
                ("RANDOM_SEED_LO".to_owned(), 7),
                ("RANDOM_SEED_HI".to_owned(), 0),
            ],
            vec!["UART".to_owned()],
        )
    }

    #[test]
    fn scenario_renders_its_stimulus() {
        let s = scenario();
        assert_eq!(s.globals().value("TEST1_TARGET_PAGE"), Some(8));
        assert_eq!(s.globals().value("TEST2_TARGET_PAGE"), Some(7));
        assert_eq!(s.globals().value("RANDOM_SEED_LO"), Some(7));
        assert_eq!(s.name(), "CR_000");
        assert_eq!(s.kind().name(), "constrained-random");
    }

    #[test]
    fn retargeting_keeps_stimulus_and_swaps_platform_knobs() {
        let s = scenario();
        let accel = s.globals_for(PlatformId::Accelerator);
        // Same stimulus…
        assert_eq!(
            accel.value("TEST1_TARGET_PAGE"),
            s.globals().value("TEST1_TARGET_PAGE")
        );
        // …different platform knobs.
        assert_ne!(accel.value("POLL_LIMIT"), s.globals().value("POLL_LIMIT"));
    }
}
