//! Change-sets: what porting an environment actually touched.
//!
//! The central measurable of the reproduction: when a derivative or
//! specification change arrives, how many files and lines change in an
//! ADVM environment versus a hardwired one? [`diff_trees`] compares two
//! file trees (name → text) with a line-level LCS diff.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of change a file underwent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeKind {
    /// File exists only in the new tree.
    Added,
    /// File exists only in the old tree.
    Removed,
    /// File exists in both with different content.
    Modified,
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChangeKind::Added => "added",
            ChangeKind::Removed => "removed",
            ChangeKind::Modified => "modified",
        })
    }
}

/// One file's change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileChange {
    /// File path within the environment.
    pub path: String,
    /// Change classification.
    pub kind: ChangeKind,
    /// Lines present only in the new version.
    pub lines_added: usize,
    /// Lines present only in the old version.
    pub lines_removed: usize,
}

impl FileChange {
    /// Total lines touched (added + removed).
    pub fn lines_touched(&self) -> usize {
        self.lines_added + self.lines_removed
    }
}

/// The set of changes between two environment versions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeSet {
    changes: Vec<FileChange>,
}

impl ChangeSet {
    /// An empty change-set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-file changes, ordered by path.
    pub fn changes(&self) -> &[FileChange] {
        &self.changes
    }

    /// Number of files touched.
    pub fn files_touched(&self) -> usize {
        self.changes.len()
    }

    /// Total lines added across all files.
    pub fn lines_added(&self) -> usize {
        self.changes.iter().map(|c| c.lines_added).sum()
    }

    /// Total lines removed across all files.
    pub fn lines_removed(&self) -> usize {
        self.changes.iter().map(|c| c.lines_removed).sum()
    }

    /// Total lines touched.
    pub fn lines_touched(&self) -> usize {
        self.lines_added() + self.lines_removed()
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The change for one path, if any.
    pub fn change(&self, path: &str) -> Option<&FileChange> {
        self.changes.iter().find(|c| c.path == path)
    }
}

impl fmt::Display for ChangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} file(s) touched, +{} -{} lines",
            self.files_touched(),
            self.lines_added(),
            self.lines_removed()
        )?;
        for c in &self.changes {
            writeln!(
                f,
                "  {:>9} {} (+{} -{})",
                c.kind.to_string(),
                c.path,
                c.lines_added,
                c.lines_removed
            )?;
        }
        Ok(())
    }
}

/// Diffs two file trees (path → content).
pub fn diff_trees(old: &BTreeMap<String, String>, new: &BTreeMap<String, String>) -> ChangeSet {
    let mut changes = Vec::new();
    for (path, old_text) in old {
        match new.get(path) {
            None => {
                changes.push(FileChange {
                    path: path.clone(),
                    kind: ChangeKind::Removed,
                    lines_added: 0,
                    lines_removed: old_text.lines().count(),
                });
            }
            Some(new_text) if new_text != old_text => {
                let (added, removed) = diff_lines(old_text, new_text);
                changes.push(FileChange {
                    path: path.clone(),
                    kind: ChangeKind::Modified,
                    lines_added: added,
                    lines_removed: removed,
                });
            }
            Some(_) => {}
        }
    }
    for (path, new_text) in new {
        if !old.contains_key(path) {
            changes.push(FileChange {
                path: path.clone(),
                kind: ChangeKind::Added,
                lines_added: new_text.lines().count(),
                lines_removed: 0,
            });
        }
    }
    changes.sort_by(|a, b| a.path.cmp(&b.path));
    ChangeSet { changes }
}

/// Line-level diff via LCS: returns `(lines_added, lines_removed)`.
pub fn diff_lines(old: &str, new: &str) -> (usize, usize) {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let lcs = lcs_len(&a, &b);
    (b.len() - lcs, a.len() - lcs)
}

fn lcs_len(a: &[&str], b: &[&str]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Two-row DP; environments are small files so O(n*m) is fine.
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for line_a in a {
        for (j, line_b) in b.iter().enumerate() {
            cur[j + 1] = if line_a == line_b {
                prev[j] + 1
            } else {
                cur[j].max(prev[j + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(files: &[(&str, &str)]) -> BTreeMap<String, String> {
        files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect()
    }

    #[test]
    fn identical_trees_produce_empty_changeset() {
        let t = tree(&[("a.asm", "NOP\nRET\n")]);
        let cs = diff_trees(&t, &t);
        assert!(cs.is_empty());
        assert_eq!(cs.files_touched(), 0);
    }

    #[test]
    fn single_line_edit_counts_one_add_one_remove() {
        let old = tree(&[("g.inc", "A .EQU 1\nB .EQU 2\nC .EQU 3\n")]);
        let new = tree(&[("g.inc", "A .EQU 1\nB .EQU 9\nC .EQU 3\n")]);
        let cs = diff_trees(&old, &new);
        assert_eq!(cs.files_touched(), 1);
        assert_eq!((cs.lines_added(), cs.lines_removed()), (1, 1));
        assert_eq!(cs.change("g.inc").unwrap().kind, ChangeKind::Modified);
    }

    #[test]
    fn added_and_removed_files() {
        let old = tree(&[("gone.asm", "x\ny\n")]);
        let new = tree(&[("new.asm", "a\nb\nc\n")]);
        let cs = diff_trees(&old, &new);
        assert_eq!(cs.files_touched(), 2);
        assert_eq!(cs.change("gone.asm").unwrap().kind, ChangeKind::Removed);
        assert_eq!(cs.change("gone.asm").unwrap().lines_removed, 2);
        assert_eq!(cs.change("new.asm").unwrap().kind, ChangeKind::Added);
        assert_eq!(cs.change("new.asm").unwrap().lines_added, 3);
    }

    #[test]
    fn diff_lines_handles_insertion_in_middle() {
        let (added, removed) = diff_lines("a\nb\nc\n", "a\nX\nb\nc\n");
        assert_eq!((added, removed), (1, 0));
    }

    #[test]
    fn diff_lines_handles_reorder_as_add_remove() {
        let (added, removed) = diff_lines("a\nb\n", "b\na\n");
        assert_eq!(added + removed, 2, "a reorder touches two lines");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(diff_lines("", ""), (0, 0));
        assert_eq!(diff_lines("", "a\n"), (1, 0));
        assert_eq!(diff_lines("a\n", ""), (0, 1));
    }

    #[test]
    fn display_summarises() {
        let old = tree(&[("g.inc", "A .EQU 1\n")]);
        let new = tree(&[("g.inc", "A .EQU 2\n")]);
        let text = diff_trees(&old, &new).to_string();
        assert!(text.contains("1 file(s) touched"), "{text}");
        assert!(text.contains("modified g.inc"), "{text}");
    }
}
