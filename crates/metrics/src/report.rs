//! Fixed-width table rendering for experiment output.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A simple left-aligned text table.
///
/// ```
/// use advm_metrics::Table;
///
/// let mut table = Table::new("Demo", &["name", "value"]);
/// table.row(&["alpha", "1"]);
/// table.row(&["beta", "22"]);
/// let text = table.to_string();
/// assert!(text.contains("alpha"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, for programmatic checks in tests.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["wide-cell-content", "x"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "== T ==");
        assert!(lines[1].starts_with("a "));
        assert!(lines[3].starts_with("wide-cell-content"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn len_and_rows() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        t.row(&["2"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1][0], "2");
    }
}
