//! # advm-metrics — quantifying verification effort
//!
//! The ADVM paper argues qualitatively: porting is "rapid", effort is
//! "saved", the initial abstraction cost is "easily recovered on first
//! reuse". To reproduce those claims as measurements, this crate provides:
//!
//! * [`changeset`] — line-level diffs between two versions of a test
//!   environment (files touched, lines added/removed), computed with a
//!   real LCS diff,
//! * [`effort`] — a simple engineer-time model over change-sets
//!   (per-file overhead plus per-line cost), used to draw the paper's
//!   implicit cumulative-effort curves,
//! * [`report`] — fixed-width table rendering shared by every experiment
//!   binary, so `cargo run -p advm-bench --bin exp_*` output is uniform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod changeset;
pub mod effort;
pub mod report;

pub use changeset::{diff_trees, ChangeKind, ChangeSet, FileChange};
pub use effort::{EffortModel, Minutes};
pub use report::Table;
