//! An engineer-time model over change-sets.
//!
//! Deliberately simple and fully documented, so the experiments' effort
//! curves are interpretable: touching a file costs a fixed overhead
//! (finding it, understanding context, reviewing, releasing) and each
//! changed line costs editing time. Writing *new* code costs more per
//! line than editing. The paper's claims are about *relative* shapes
//! (ADVM vs direct, before vs after the base-function library), which are
//! insensitive to the exact constants — the ablation in the experiments
//! sweeps them.

use serde::{Deserialize, Serialize};

use crate::changeset::ChangeSet;

/// Engineer effort in minutes.
pub type Minutes = f64;

/// Cost constants of the effort model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EffortModel {
    /// Fixed cost per file touched (locate, open, review, release).
    pub minutes_per_file: Minutes,
    /// Cost per changed (added or removed) line of existing code.
    pub minutes_per_changed_line: Minutes,
    /// Cost per line of newly written code (tests, base functions).
    pub minutes_per_new_line: Minutes,
    /// Cost of one full regression debug cycle (a change that breaks
    /// tests until re-factored).
    pub minutes_per_debug_cycle: Minutes,
}

impl EffortModel {
    /// Default constants: 5 min/file, 0.5 min/edited line, 2 min/new
    /// line, 30 min/debug cycle.
    pub fn standard() -> Self {
        Self {
            minutes_per_file: 5.0,
            minutes_per_changed_line: 0.5,
            minutes_per_new_line: 2.0,
            minutes_per_debug_cycle: 30.0,
        }
    }

    /// Effort to apply an existing change-set (porting/refactoring work).
    pub fn apply_changeset(&self, cs: &ChangeSet) -> Minutes {
        self.minutes_per_file * cs.files_touched() as f64
            + self.minutes_per_changed_line * cs.lines_touched() as f64
    }

    /// Effort to write `lines` of new code across `files` new files.
    pub fn write_new(&self, files: usize, lines: usize) -> Minutes {
        self.minutes_per_file * files as f64 + self.minutes_per_new_line * lines as f64
    }

    /// Effort of `cycles` debug round-trips.
    pub fn debug(&self, cycles: usize) -> Minutes {
        self.minutes_per_debug_cycle * cycles as f64
    }
}

impl Default for EffortModel {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use crate::changeset::diff_trees;

    use super::*;

    #[test]
    fn changeset_effort_counts_files_and_lines() {
        let old: BTreeMap<String, String> =
            [("g.inc".to_string(), "A .EQU 1\nB .EQU 2\n".to_string())].into();
        let new: BTreeMap<String, String> =
            [("g.inc".to_string(), "A .EQU 1\nB .EQU 3\n".to_string())].into();
        let cs = diff_trees(&old, &new);
        let model = EffortModel::standard();
        // 1 file * 5 + 2 lines (1 added + 1 removed) * 0.5 = 6 minutes.
        assert!((model.apply_changeset(&cs) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_changeset_costs_nothing() {
        let model = EffortModel::standard();
        assert_eq!(model.apply_changeset(&ChangeSet::new()), 0.0);
    }

    #[test]
    fn new_code_costs_more_per_line_than_edits() {
        let model = EffortModel::standard();
        assert!(model.minutes_per_new_line > model.minutes_per_changed_line);
        // 2 files, 100 lines: 2*5 + 100*2 = 210.
        assert!((model.write_new(2, 100) - 210.0).abs() < 1e-9);
    }

    #[test]
    fn debug_cycles_dominate_small_edits() {
        let model = EffortModel::standard();
        assert!(model.debug(1) > model.write_new(1, 10));
    }
}
