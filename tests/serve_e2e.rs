//! End-to-end tests of the verification daemon: the full socket round
//! trip, cross-job artifact reuse, concurrent submitters, and
//! sharding-independence of job results.
//!
//! The acceptance property of the daemon is checked here: a cold and a
//! warm submission of the same regress job against one daemon produce
//! byte-identical (perf-stripped) reports — and the warm one's `perf`
//! block proves it reused the cold job's artifacts (`artifact_hits`).

use std::path::{Path, PathBuf};

use advm::campaign::Campaign;
use advm::env::ModuleTestEnv;
use advm::wire::JsonValue;
use advm_serve::daemon::{Daemon, DaemonConfig};
use advm_serve::{JobSpec, JobState};
use advm_soc::PlatformId;

use proptest::prelude::*;

/// Minimal self-cleaning temp dir (no external crate available).
struct TempDir(PathBuf);

impl TempDir {
    fn new(prefix: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("creating temp dir");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes the two-test PAGE preset to disk and returns its directory.
fn env_on_disk() -> TempDir {
    let dir = TempDir::new("advm-e2e");
    let env = advm::presets::page_env(advm::presets::default_config(), 2);
    advm::fsio::write_tree(dir.path(), &env.tree()).expect("writing env tree");
    dir
}

fn load_env(dir: &Path) -> ModuleTestEnv {
    let tree = advm::fsio::read_tree(dir).expect("reading env tree");
    ModuleTestEnv::from_tree("PAGE", &tree).expect("parsing PAGE env")
}

fn regress_spec(dir: &Path, platforms: &[PlatformId], workers: u64) -> JobSpec {
    JobSpec::Regress {
        dir: dir.display().to_string(),
        env: "PAGE".into(),
        platforms: platforms.to_vec(),
        all_platforms: false,
        workers: Some(workers),
        fuel: None,
    }
}

/// The in-process run a daemon regress job must reproduce byte-for-byte
/// (modulo the measured `perf` block).
fn in_process_report(dir: &Path, platforms: &[PlatformId], workers: u64) -> String {
    Campaign::new()
        .env(load_env(dir))
        .bisect(true)
        .platforms(platforms.iter().copied())
        .workers(workers as usize)
        .run()
        .expect("in-process campaign")
        .to_json()
}

/// Strips the measured `"perf":{...}` object out of a report JSON: wall
/// time, steps/sec and the cross-job `artifact_hits` counter vary run
/// to run, while everything verdict-bearing must be byte-identical.
fn strip_perf(json: &str) -> String {
    let mut out = json.to_owned();
    while let Some(start) = out.find("\"perf\":{") {
        let brace = start + "\"perf\":".len();
        let mut depth = 0usize;
        let mut end = brace;
        for (i, c) in out[brace..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = brace + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Also swallow one adjacent comma so the remainder stays valid.
        let end = if out[end..].starts_with(',') {
            end + 1
        } else {
            end
        };
        out.replace_range(start..end, "");
    }
    out
}

/// Extracts the raw `"report"` object from a final `done` line, byte
/// for byte (the object runs to the line's closing brace).
fn report_slice(done_line: &str) -> &str {
    let start = done_line
        .find("\"report\":")
        .expect("done line carries a report")
        + "\"report\":".len();
    &done_line[start..done_line.len() - 1]
}

/// Reads `report.perf.artifact_hits` out of a final `done` line.
fn artifact_hits(done_line: &str) -> u64 {
    JsonValue::parse(done_line)
        .expect("done line parses")
        .get("report")
        .and_then(|r| r.get("perf"))
        .map(|p| p.u64_field("artifact_hits").expect("artifact_hits"))
        .expect("report carries perf")
}

#[cfg(unix)]
mod socket {
    use super::*;
    use advm_serve::{Client, Server};

    /// Binds a server on a fresh socket path and runs it on its own
    /// thread; the returned guard shuts it down on drop.
    struct RunningServer {
        path: PathBuf,
        handle: Option<std::thread::JoinHandle<()>>,
    }

    impl RunningServer {
        fn start(config: DaemonConfig) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "advm-e2e-{}-{}.sock",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            let server = Server::bind(Daemon::start(config), &path).expect("binding test socket");
            let handle = std::thread::spawn(move || server.run().expect("server run"));
            Self {
                path,
                handle: Some(handle),
            }
        }

        fn client(&self) -> Client {
            Client::connect(&self.path).expect("connecting to test socket")
        }
    }

    impl Drop for RunningServer {
        fn drop(&mut self) {
            if let Ok(mut client) = Client::connect(&self.path) {
                let _ = client.shutdown();
            }
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
            let _ = std::fs::remove_file(&self.path);
        }
    }

    /// The tentpole acceptance test: cold then warm identical regress
    /// jobs over the socket. The warm job's perf JSON shows nonzero
    /// cross-job cache hits, and both verdicts are byte-identical
    /// (perf-stripped) to a fresh in-process campaign.
    #[test]
    fn warm_job_reuses_artifacts_and_matches_in_process_run() {
        let dir = env_on_disk();
        let platforms = [PlatformId::GoldenModel, PlatformId::RtlSim];
        let server = RunningServer::start(DaemonConfig {
            workers: 1,
            cache_capacity: 64,
        });
        let mut client = server.client();

        let spec = regress_spec(dir.path(), &platforms, 2);
        let cold_id = client.submit(spec.clone()).expect("submit cold");
        let cold_done = client.watch(cold_id, |_| {}).expect("watch cold");
        let warm_id = client.submit(spec).expect("submit warm");
        let warm_done = client.watch(warm_id, |_| {}).expect("watch warm");

        // Cross-job reuse: cold builds, warm hits.
        assert_eq!(artifact_hits(&cold_done), 0, "{cold_done}");
        assert!(artifact_hits(&warm_done) > 0, "{warm_done}");
        // The daemon's own status counters agree.
        let status = client.status().expect("status");
        let stats = JsonValue::parse(&status).unwrap();
        let hits = stats.get("artifacts").unwrap().u64_field("hits").unwrap();
        assert!(hits > 0, "{status}");

        // Reuse is perf-only: both reports match a fresh in-process run
        // byte for byte once the measured perf block is stripped.
        let reference = in_process_report(dir.path(), &platforms, 2);
        assert_eq!(strip_perf(report_slice(&cold_done)), strip_perf(&reference));
        assert_eq!(strip_perf(report_slice(&warm_done)), strip_perf(&reference));
    }

    /// A fuzz job over the socket: the daemon generates the programs,
    /// mines checkers, verifies them violation-free, and the final
    /// report is byte-identical (perf-stripped) to an in-process
    /// [`Fuzz`] run of the same spec.
    #[test]
    fn fuzz_job_round_trips_with_mined_checkers() {
        let server = RunningServer::start(DaemonConfig {
            workers: 1,
            cache_capacity: 64,
        });
        let mut client = server.client();
        let id = client
            .submit(JobSpec::Fuzz {
                programs: Some(3),
                seed: Some(11),
                mine: true,
                platforms: vec![PlatformId::GoldenModel, PlatformId::RtlSim],
                all_platforms: false,
                workers: Some(2),
                fuel: None,
            })
            .expect("submit fuzz");
        let mut events = Vec::new();
        let done = client
            .watch(id, |line| events.push(line.to_owned()))
            .expect("watch fuzz");

        let value = JsonValue::parse(&done).expect("done line parses");
        assert!(value.bool_field("ok").unwrap(), "{done}");
        let report = value.get("report").expect("report present");
        assert_eq!(report.u64_field("programs").unwrap(), 3);
        assert!(!report.get("mined").unwrap().as_array().unwrap().is_empty());
        let checkers = report.get("campaign").unwrap().get("checkers").unwrap();
        assert!(checkers.u64_field("armed").unwrap() > 0, "{done}");
        assert!(
            checkers
                .get("violations")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "{done}"
        );
        // Generated-program runs streamed live, labelled with the job id.
        assert!(
            events
                .iter()
                .any(|l| l.contains("\"type\":\"job_started\"") && l.contains("FUZZ_")),
            "stream must carry fuzz runs"
        );

        // Byte-identical to the same fuzz run in process (perf aside).
        let reference = advm::fuzz::Fuzz::new()
            .programs(3)
            .seed(11)
            .mine(true)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .workers(2)
            .run()
            .expect("in-process fuzz")
            .to_json();
        assert_eq!(strip_perf(report_slice(&done)), strip_perf(&reference));
    }

    /// Two clients submit and watch concurrently; each stream is
    /// complete, correctly labelled, in order, and verdict-identical to
    /// the in-process equivalent.
    #[test]
    fn concurrent_submitters_get_interleaved_but_intact_streams() {
        let dir = env_on_disk();
        let server = RunningServer::start(DaemonConfig {
            workers: 2,
            cache_capacity: 64,
        });
        let platform_sets: [&[PlatformId]; 2] = [
            &[PlatformId::GoldenModel, PlatformId::RtlSim],
            &[PlatformId::GateSim],
        ];
        let results: Vec<(u64, Vec<String>, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = platform_sets
                .iter()
                .map(|platforms| {
                    let server = &server;
                    let dir = dir.path();
                    scope.spawn(move || {
                        let mut client = server.client();
                        let id = client
                            .submit(regress_spec(dir, platforms, 1))
                            .expect("submit");
                        let mut events = Vec::new();
                        let done = client
                            .watch(id, |line| events.push(line.to_owned()))
                            .expect("watch");
                        (id, events, done)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for ((id, events, done), platforms) in results.iter().zip(platform_sets) {
            // Every line belongs to the watched job and seq is dense.
            for (expected_seq, line) in events.iter().enumerate() {
                let value = JsonValue::parse(line).unwrap();
                assert_eq!(value.u64_field("job").unwrap(), *id, "{line}");
                assert_eq!(value.u64_field("seq").unwrap(), expected_seq as u64);
            }
            let first = JsonValue::parse(&events[0]).unwrap();
            assert_eq!(
                first.get("event").unwrap().str_field("type").unwrap(),
                "started"
            );
            // The verdict matches a fresh in-process campaign.
            let reference = in_process_report(dir.path(), platforms, 1);
            assert_eq!(strip_perf(report_slice(done)), strip_perf(&reference));
        }
    }
}

#[test]
fn failed_jobs_seal_with_the_error() {
    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        cache_capacity: 8,
    });
    let id = daemon.submit(JobSpec::Regress {
        dir: "/nonexistent/advm-envs".into(),
        env: "PAGE".into(),
        platforms: vec![],
        all_platforms: false,
        workers: None,
        fuel: None,
    });
    let record = daemon.job(id).expect("job exists");
    let line = record.wait();
    assert!(matches!(record.state(), JobState::Failed { .. }), "{line}");
    let value = JsonValue::parse(&line).unwrap();
    assert!(!value.bool_field("ok").unwrap());
    assert!(value.str_field("error").unwrap().contains("/nonexistent"));
    daemon.join();
}

proptest! {
    // Each case runs full campaigns through two daemons; a few cases
    // keep the property meaningful without dominating suite runtime.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Job results are independent of the worker-pool sharding: the
    /// same spec run serially (workers=1) and sharded (workers=N)
    /// produces byte-identical perf-stripped reports, warm or cold.
    #[test]
    fn job_reports_are_sharding_independent(workers in 2u64..=6) {
        let dir = env_on_disk();
        let platforms = [PlatformId::GoldenModel, PlatformId::RtlSim];
        let mut reports = Vec::new();
        for campaign_workers in [1, workers] {
            let daemon = Daemon::start(DaemonConfig { workers: 1, cache_capacity: 64 });
            let spec = regress_spec(dir.path(), &platforms, campaign_workers);
            // Cold, then warm on the same daemon: sharding must not
            // change the report even when every artifact is prebuilt.
            for _ in 0..2 {
                let record = daemon.job(daemon.submit(spec.clone())).unwrap();
                reports.push(strip_perf(report_slice(&record.wait())));
            }
            daemon.join();
        }
        let first = &reports[0];
        for report in &reports[1..] {
            prop_assert_eq!(first, report);
        }
    }
}
