//! Integration tests over the experiment harness: every table the
//! benchmark binaries print must reproduce the shape the paper claims.
//! `EXPERIMENTS.md` records these expectations side by side with
//! measured values.

use advm_bench::experiments;

#[test]
fn e1_layers_and_reuse() {
    let r = experiments::fig1_structure::run(5);
    assert!(r.base_functions_used >= 3);
    assert!(r.call_sites >= 2 * r.base_functions_used);
}

#[test]
fn e2_abuse_costs_scale_with_violations() {
    let r = experiments::fig2_violations::run(8, &[0, 4, 8]);
    assert_eq!(r.rows[0].broken_after_port, 0);
    assert_eq!(r.rows[1].broken_after_port, 4);
    assert_eq!(r.rows[2].broken_after_port, 8);
}

#[test]
fn e3_layout_rules_enforced() {
    let r = experiments::fig3_layout::run();
    assert_eq!(r.issues_per_scenario[0].1, 0);
    assert!(r.issues_per_scenario[1..].iter().all(|(_, n)| *n > 0));
}

#[test]
fn e4_e5_system_composition() {
    let r = experiments::fig4_system::run();
    assert_eq!(r.clean_issues, 0);
    assert!(r.rogue_issues > 0);
    assert_eq!(r.env_table.len(), 8);
}

#[test]
fn e6_port_cost_shape() {
    let r = experiments::fig6_spec_change::run(&[5, 20], 5);
    for row in &r.rows {
        assert_eq!(row.advm_test_files, 0);
        assert!(row.advm_files <= 3);
        assert_eq!(row.baseline_files, row.n);
    }
}

#[test]
fn e7_es_change_shape() {
    let r = experiments::fig7_es_change::run();
    assert!(r.broken_before_fix >= 3);
    assert_eq!(r.advm_test_files, 0);
    assert_eq!(r.advm_pass_after, r.advm_tests);
    assert_eq!(r.baseline_pass_after, r.baseline_tests);
}

#[test]
fn e8_platform_matrix_green_and_fault_localised() {
    let r = experiments::platforms::run();
    assert_eq!(r.clean_failures, 0);
    assert!(r.fault_divergences >= 1);
    assert_eq!(r.divergent_platforms, vec![advm_soc::PlatformId::RtlSim]);
}

#[test]
fn e9_effort_crossover() {
    let r = experiments::effort::run(10);
    assert!(r.stages[0].advm_cumulative > r.stages[0].baseline_cumulative);
    assert!(r.crossover_stage.is_some());
    let last = r.stages.last().unwrap();
    assert!(last.advm_cumulative < last.baseline_cumulative);
}

#[test]
fn e10_devcost_break_even() {
    let r = experiments::devcost::run(60);
    assert!(r.advm_lines_per_test < r.baseline_lines_per_test);
    assert!(r.break_even_tests.is_some());
}

#[test]
fn e11_release_stability() {
    let r = experiments::release_labels::run();
    assert_eq!(r.frozen_before, r.frozen_after);
    assert!(!r.live_matches_after);
}

#[test]
fn e12_random_globals_pass_and_cover() {
    let r = experiments::random_globals::run(24);
    assert_eq!(r.passed, r.instances);
    assert!(r.final_coverage > 0.5);
}

#[test]
fn e14_register_coverage_complete() {
    let r = experiments::coverage::run();
    assert_eq!(r.holes, 0);
    assert!(r.page_only_ratio < r.full_ratio);
}

#[test]
fn e13_ablation_decomposes_discipline() {
    let r = experiments::ablation_wrappers::run();
    let outcome = |name: &str| r.outcomes.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(outcome("full ADVM").es_revision, 2);
    assert_eq!(outcome("defines-only").derivative_port, 2);
    assert_eq!(outcome("defines-only").es_revision, 1);
    assert_eq!(outcome("hardwired").derivative_port, 1);
}
