//! Properties of the program-fuzzing subsystem, plus its acceptance
//! run: ≥64 generated programs across all six platforms with zero
//! decode errors and zero spurious mined-assertion violations.
//!
//! The determinism property mirrors the rest of the engine: a fuzz
//! run's report is a pure function of its spec — worker count shards
//! the work, never the verdict.

use advm::campaign::Campaign;
use advm::fuzz::{program_env, Fuzz};
use advm_fuzz::ProgramSource;
use advm_soc::PlatformId;

use proptest::prelude::*;

/// Strips the measured `"perf":{...}` object out of a report JSON: wall
/// time and steps/sec vary run to run, while everything verdict-bearing
/// must be byte-identical.
fn strip_perf(json: &str) -> String {
    let mut out = json.to_owned();
    while let Some(start) = out.find("\"perf\":{") {
        let brace = start + "\"perf\":".len();
        let mut depth = 0usize;
        let mut end = brace;
        for (i, c) in out[brace..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = brace + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = if out[end..].starts_with(',') {
            end + 1
        } else {
            end
        };
        out.replace_range(start..end, "");
    }
    out
}

/// The subsystem's acceptance run, exactly as CI drives it through the
/// CLI: 64 generated programs, all six platforms, mining on. Zero
/// build/decode errors, zero failures, zero divergences and — because
/// the checking runs replay the mining runs — zero spurious violations.
#[test]
fn acceptance_64_programs_by_six_platforms_mine_clean() {
    let report = Fuzz::new()
        .programs(64)
        .mine(true)
        .platforms(PlatformId::ALL)
        .run()
        .expect("fuzz matrix must build and run");
    assert_eq!(report.programs(), 64);
    assert_eq!(report.campaign().total(), 64 * PlatformId::ALL.len());
    assert_eq!(
        report.campaign().failed(),
        0,
        "{}",
        report.campaign().matrix()
    );
    assert!(report.campaign().divergences().is_empty());
    assert!(!report.mined().is_empty(), "the batch must mine checkers");
    assert!(
        report.violations().is_empty(),
        "fault-free runs may never violate checkers mined from them: {:?}",
        report.violations()
    );
    assert!(report.ok());
}

proptest! {
    // Full builds and six-platform runs per case; a few cases keep the
    // properties meaningful without dominating suite runtime.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every generated instruction survives the encode→decode round
    /// trip at any word-aligned load address — for any seed, not just
    /// the defaults the other tests pin.
    #[test]
    fn generated_programs_round_trip_their_encodings(
        seed in any::<u64>(),
        base in (0u32..0x3FF0).prop_map(|w| w * 4),
    ) {
        for program in ProgramSource::new(seed).generate(4) {
            prop_assert!(
                program.check_encoding(base).is_ok(),
                "{} fails at base {base:#x}",
                program.name()
            );
        }
    }

    /// Every generated program terminates within the default fuel on
    /// every platform, reporting PASS: the generator's control-flow
    /// constraints (forward-only branches, bounded loops) hold.
    #[test]
    fn generated_programs_terminate_on_all_platforms(seed in any::<u64>()) {
        let mut campaign = Campaign::new().platforms(PlatformId::ALL);
        for program in ProgramSource::new(seed).generate(2) {
            campaign = campaign.env(program_env(&program));
        }
        let report = campaign.run().expect("fuzz programs must build");
        prop_assert_eq!(report.failed(), 0, "{}", report.matrix());
        prop_assert!(report.divergences().is_empty());
    }

    /// A mined fuzz campaign's report is byte-identical (perf-stripped)
    /// whether one worker or eight execute it — generation, mining and
    /// violation collection are all sharding-independent.
    #[test]
    fn fuzz_reports_are_worker_count_independent(seed in any::<u64>()) {
        let run = |workers: usize| {
            Fuzz::new()
                .programs(4)
                .seed(seed)
                .mine(true)
                .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
                .workers(workers)
                .run()
                .expect("fuzz run")
                .to_json()
        };
        prop_assert_eq!(strip_perf(&run(1)), strip_perf(&run(8)));
    }
}
