//! Cross-crate property tests: invariants that hold over randomised
//! inputs spanning assembler, SoC model, simulator and methodology.

use std::sync::Arc;

use advm::audit::FaultAudit;
use advm::campaign::Campaign;
use advm::env::{EnvConfig, ModuleTestEnv, TestCell};
use advm::porting::{port_env, test_files_touched};
use advm::prefix::PrefixPool;
use advm::presets::{default_config, page_env, uart_env};
use advm::testplan::Testplan;
use advm_gen::{
    ConstrainedRandom, CoverageDirected, CoverageFeedback, GlobalsConstraints, ScenarioEngine,
    ScenarioSource, StimulusPlan,
};
use advm_sim::PlatformFault;
use advm_soc::{DerivativeId, GlobalsSpec, PlatformId};
use proptest::prelude::*;

fn arb_derivative() -> impl Strategy<Value = DerivativeId> {
    prop_oneof![
        Just(DerivativeId::Sc88A),
        Just(DerivativeId::Sc88B),
        Just(DerivativeId::Sc88C),
        Just(DerivativeId::Sc88D),
    ]
}

fn arb_platform() -> impl Strategy<Value = PlatformId> {
    prop_oneof![
        Just(PlatformId::GoldenModel),
        Just(PlatformId::RtlSim),
        Just(PlatformId::GateSim),
        Just(PlatformId::Accelerator),
        Just(PlatformId::Bondout),
        Just(PlatformId::ProductSilicon),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every (derivative, platform) globals file assembles standalone.
    #[test]
    fn any_globals_file_assembles(d in arb_derivative(), p in arb_platform()) {
        let globals = GlobalsSpec::new(advm_soc::Derivative::from_id(d), p).render();
        let program = advm_asm::assemble_str(&globals.text());
        prop_assert!(program.is_ok(), "{d:?}/{p:?}: {:?}", program.err());
    }

    /// Porting never touches test files, whatever the source and target.
    #[test]
    fn porting_never_touches_tests(
        from_d in arb_derivative(), from_p in arb_platform(),
        to_d in arb_derivative(), to_p in arb_platform(),
    ) {
        let env = page_env(EnvConfig::new(from_d, from_p), 2);
        let outcome = port_env(&env, EnvConfig::new(to_d, to_p));
        prop_assert_eq!(test_files_touched(&outcome.changes), 0);
    }

    /// A ported environment always builds and its first test passes.
    #[test]
    fn ported_env_always_green(d in arb_derivative(), p in arb_platform()) {
        let env = page_env(EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel), 1);
        let ported = port_env(&env, EnvConfig::new(d, p)).env;
        let result = advm::build::run_cell(&ported, "TEST_PAGE_SELECT_01");
        prop_assert!(result.as_ref().map(|r| r.passed()).unwrap_or(false),
            "{d:?}/{p:?}: {result:?}");
    }

    /// Tree rendering and reconstruction are inverse operations for any
    /// configuration.
    #[test]
    fn env_tree_roundtrip(d in arb_derivative(), p in arb_platform()) {
        let env = page_env(EnvConfig::new(d, p), 2);
        let rebuilt = advm::ModuleTestEnv::from_tree("PAGE", &env.tree());
        prop_assert_eq!(rebuilt.expect("tree is complete"), env);
    }

    /// Random seeded globals instances always assemble (gen crate x asm
    /// crate) — whichever scenario source drew them.
    #[test]
    fn random_globals_assemble(d in arb_derivative(), p in arb_platform(), seed in 0u64..1000) {
        let constraints = GlobalsConstraints::new(d, p).with_test_page_count(4);
        let file = constraints.instantiate(seed).expect("space non-empty");
        prop_assert!(advm_asm::assemble_str(&file.text()).is_ok());
        let directed = advm::stimulus::directed_source(
            &Testplan::new("PAGE").with_entry("TEST_PAGE_SELECT_01", "plan entry"),
            EnvConfig::new(d, p),
        ).draw(0, seed).expect("space non-empty");
        prop_assert!(advm_asm::assemble_str(&directed.globals().text()).is_ok());
        let chased = CoverageDirected::new(
            constraints,
            CoverageFeedback::new().with_pages_seen(0..8u32),
        ).draw(0, seed).expect("space non-empty");
        prop_assert!(advm_asm::assemble_str(&chased.globals().text()).is_ok());
    }

    /// `StimulusPlan` batching is deterministic: the same (sources,
    /// master seed) pair yields byte-identical scenario batches across
    /// repeated plans, before and after campaigns, and regardless of the
    /// campaign's worker count.
    #[test]
    fn stimulus_plan_is_deterministic(
        seed in 0u64..1_000_000, batch in 1usize..4, d in arb_derivative(),
    ) {
        let make_plan = || -> StimulusPlan {
            let constraints = GlobalsConstraints::new(d, PlatformId::GoldenModel)
                .with_test_page_count(2)
                .with_knob("RANDOM_BAUD_DIV", 1..=255);
            ScenarioEngine::new(seed)
                .source(advm::stimulus::directed_source(
                    &Testplan::new("PAGE").with_entry("TEST_PAGE_SELECT_01", "directed entry"),
                    EnvConfig::new(d, PlatformId::GoldenModel),
                ))
                .source(ConstrainedRandom::new(constraints.clone()))
                .source(CoverageDirected::new(
                    constraints,
                    CoverageFeedback::new().with_pages_seen(0..16u32),
                ))
                .batch(batch)
                .plan()
                .expect("satisfiable constraints")
        };
        let fingerprint = |plan: &StimulusPlan| -> Vec<(String, u64, String)> {
            plan.scenarios()
                .iter()
                .map(|s| (s.name().to_owned(), s.seed(), s.globals().text()))
                .collect()
        };
        let reference = make_plan();
        prop_assert_eq!(reference.len(), 1 + 2 * batch);
        prop_assert_eq!(fingerprint(&make_plan()), fingerprint(&reference));

        // Campaign execution must neither perturb planning nor depend on
        // worker count for its verdicts.
        let run = |workers: usize| {
            Campaign::new()
                .scenarios(reference.scenarios().iter().cloned())
                .platform(PlatformId::GoldenModel)
                .workers(workers)
                .run()
                .expect("scenario suite builds")
        };
        let serial = run(1);
        let parallel = run(8);
        prop_assert_eq!(serial.total(), parallel.total());
        prop_assert_eq!(serial.passed(), parallel.passed());
        prop_assert_eq!(serial.scenarios().len(), parallel.scenarios().len());
        prop_assert_eq!(fingerprint(&make_plan()), fingerprint(&reference));
    }

    /// A campaign over a randomly generated multi-env suite is
    /// scheduling-independent: serial (workers=1) and parallel
    /// (workers=8) runs produce identical verdicts, cache-hit counts
    /// and divergence sets.
    #[test]
    fn campaign_verdicts_independent_of_worker_count(
        cells_a in 1u32..16, cells_b in 1u32..16, d in arb_derivative(),
    ) {
        // Each env's cell list is decoded from a bitmask: bit i set
        // means TEST_i fails, clear means it passes.
        let suite: Vec<ModuleTestEnv> = [("ALPHA", cells_a), ("BETA", cells_b)]
            .into_iter()
            .map(|(name, mask)| {
                let cells: Vec<TestCell> = (0..4)
                    .map(|i| {
                        let source = if mask & (1 << i) != 0 {
                            ".INCLUDE Globals.inc\n_main:\n    LOAD ArgA, #9\n    \
                             CALL Base_Report_Fail\n    RETURN\n"
                        } else {
                            ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n"
                        };
                        TestCell::new(format!("TEST_{i}"), "generated", source)
                    })
                    .collect();
                ModuleTestEnv::new(name, EnvConfig::new(d, PlatformId::GoldenModel), cells)
            })
            .collect();

        let run = |workers: usize| {
            Campaign::new()
                .envs(suite.iter().cloned())
                .platforms([PlatformId::GoldenModel, PlatformId::RtlSim, PlatformId::GateSim])
                .workers(workers)
                .run()
                .expect("generated suite builds")
        };
        let serial = run(1);
        let parallel = run(8);

        prop_assert_eq!(serial.total(), parallel.total());
        prop_assert_eq!(serial.passed(), parallel.passed());
        prop_assert_eq!(serial.cache_hits(), parallel.cache_hits());
        prop_assert_eq!(serial.unique_builds(), parallel.unique_builds());
        // Platform-independent cells dedupe at least across golden/RTL,
        // whose abstraction-layer knobs agree.
        prop_assert!(serial.cache_hits() > 0);
        for run in serial.runs() {
            let twin = parallel
                .run_of(&run.env, &run.test_id, run.platform)
                .expect("same job set");
            prop_assert_eq!(run.result.passed(), twin.result.passed());
        }
        let serial_div: Vec<&str> = serial.divergences().iter().map(|(t, _)| t.as_str()).collect();
        let parallel_div: Vec<&str> =
            parallel.divergences().iter().map(|(t, _)| t.as_str()).collect();
        prop_assert_eq!(serial_div, parallel_div);
    }
}

/// Strips the measured `"perf":{...}` object out of a report JSON: wall
/// time and the derived steps/sec vary run to run (and decode counters
/// vary with the decode-cache mode), while everything else must be
/// byte-identical across schedules and cache modes.
fn strip_perf(json: &str) -> String {
    let mut out = json.to_owned();
    while let Some(start) = out.find("\"perf\":{") {
        let brace = start + "\"perf\":".len();
        let mut depth = 0usize;
        let mut end = brace;
        for (i, c) in out[brace..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = brace + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Also swallow one adjacent comma so the remainder stays valid.
        let end = if out[end..].starts_with(',') {
            end + 1
        } else {
            end
        };
        out.replace_range(start..end, "");
    }
    out
}

proptest! {
    // Each case sweeps several fault campaigns; a handful of cases keeps
    // the property meaningful without dominating the suite's runtime.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A fault audit is scheduling- and decode-cache-independent: serial
    /// (workers=1) and parallel (workers=8) sweeps of the same
    /// (fault × platform) matrix produce identical classifications, kill
    /// counts and (perf-stripped) JSON, and running the whole sweep with
    /// the predecoded-instruction cache disabled changes nothing either
    /// — the determinism the suite-strength numbers rely on.
    #[test]
    fn fault_audit_matrix_independent_of_worker_count(seed in 0u64..1_000) {
        let audit = |workers: usize, decode: bool| {
            FaultAudit::new()
                .suite([page_env(default_config(), 1), uart_env(default_config())])
                .faults([
                    PlatformFault::PageActiveOffByOne,
                    PlatformFault::PageMapWriteIgnored,
                    PlatformFault::UartDropsBytes,
                ])
                .platforms([advm_soc::PlatformId::RtlSim, advm_soc::PlatformId::GateSim])
                .scenarios(2)
                .seed(seed)
                .fuel(200_000)
                .workers(workers)
                .decode_cache(decode)
                .run()
                .expect("audit runs")
        };
        let serial = audit(1, true);
        let parallel = audit(8, true);
        let undecoded = audit(8, false);
        for other in [&parallel, &undecoded] {
            prop_assert_eq!(serial.cells().len(), other.cells().len());
            for (a, b) in serial.cells().iter().zip(other.cells()) {
                prop_assert_eq!(a.fault, b.fault);
                prop_assert_eq!(a.platform, b.platform);
                prop_assert_eq!(&a.outcome, &b.outcome);
            }
            prop_assert_eq!(serial.kill_counts(), other.kill_counts());
            prop_assert_eq!(strip_perf(&serial.to_json()), strip_perf(&other.to_json()));
            // The simulated-instruction total is deterministic even
            // though wall time is not — and the decode cache must not
            // change how many instructions retire.
            prop_assert_eq!(serial.perf().instructions, other.perf().instructions);
        }
        // The cached sweep shares predecoded artifacts; the uncached one
        // must never hit.
        prop_assert!(serial.perf().decode_hits > 0);
        prop_assert_eq!(undecoded.perf().decode_hits, 0);
        // The audited suite is strong enough to kill the read-path fault
        // everywhere, and PAGE_MAP's dead write-enable dies only to the
        // escape-driven round.
        prop_assert!(serial.killed(PlatformFault::PageActiveOffByOne));
        prop_assert!(serial.killed(PlatformFault::PageMapWriteIgnored));
    }

    /// Worker-local machine pooling is perf-only: pooled and
    /// fresh-construction runs produce byte-identical (perf-stripped)
    /// campaign and audit JSON — same verdicts, matrices, kill counts
    /// and divergences — at workers 1 and 8, across all six platforms.
    #[test]
    fn machine_pool_json_is_byte_identical_to_fresh_construction(seed in 0u64..1_000) {
        let envs = [page_env(default_config(), 2), uart_env(default_config())];
        let campaign = |workers: usize, pooled: bool| {
            Campaign::new()
                .envs(envs.iter().cloned())
                .platforms(PlatformId::ALL)
                .fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne)
                .workers(workers)
                .machine_pool(pooled)
                .run()
                .expect("suite builds")
        };
        let reference = strip_perf(&campaign(1, false).to_json());
        for workers in [1usize, 8] {
            prop_assert_eq!(
                &reference,
                &strip_perf(&campaign(workers, true).to_json()),
                "pooled campaign, workers={}", workers
            );
        }
        prop_assert_eq!(&reference, &strip_perf(&campaign(8, false).to_json()));

        let audit = |workers: usize, pooled: bool| {
            FaultAudit::new()
                .suite(envs.iter().cloned())
                .faults([PlatformFault::PageActiveOffByOne])
                .platforms(PlatformId::ALL)
                .scenarios(2)
                .seed(seed)
                .fuel(200_000)
                .workers(workers)
                .machine_pool(pooled)
                .run()
                .expect("audit runs")
        };
        let reference = strip_perf(&audit(1, false).to_json());
        for workers in [1usize, 8] {
            prop_assert_eq!(
                &reference,
                &strip_perf(&audit(workers, true).to_json()),
                "pooled audit, workers={}", workers
            );
        }
        prop_assert_eq!(&reference, &strip_perf(&audit(8, false).to_json()));
    }

    /// Snapshot-based prefix forking is perf-only: a fault audit whose
    /// campaigns fork every safe run from the shared fault-free prefix
    /// produces byte-identical (perf-stripped) JSON — classifications,
    /// kill counts, escapes — to a from-reset sweep, at any worker
    /// count, while actually skipping shared-prefix re-execution.
    #[test]
    fn forked_fault_audit_is_byte_identical_to_from_reset(seed in 0u64..1_000) {
        let audit = |workers: usize, fork: bool| {
            FaultAudit::new()
                .suite([page_env(default_config(), 1), uart_env(default_config())])
                .faults([
                    PlatformFault::PageActiveOffByOne,
                    PlatformFault::UartDropsBytes,
                    PlatformFault::TimerNeverExpires,
                ])
                .platforms([advm_soc::PlatformId::RtlSim, advm_soc::PlatformId::GateSim])
                .scenarios(2)
                .seed(seed)
                .fuel(200_000)
                .workers(workers)
                .fork_prefix(fork)
                .run()
                .expect("audit runs")
        };
        let reference = audit(1, false);
        prop_assert_eq!(reference.perf().forked_runs, 0);
        prop_assert_eq!(reference.perf().prefix_saved, 0);
        for workers in [1usize, 8] {
            let forked = audit(workers, true);
            prop_assert!(
                forked.perf().forked_runs > 0,
                "workers={}: {:?}", workers, forked.perf()
            );
            prop_assert!(forked.perf().prefix_saved > 0);
            prop_assert_eq!(
                strip_perf(&reference.to_json()),
                strip_perf(&forked.to_json()),
                "workers={}", workers
            );
            prop_assert_eq!(reference.perf().instructions, forked.perf().instructions);
        }
    }
}

/// The same guarantee one layer down: a campaign handed a prefix pool
/// reports byte-identical (perf-stripped) JSON to a from-reset one —
/// verdicts, matrix, divergences — serial or parallel, with the pool's
/// snapshots shared across both worker counts.
#[test]
fn forked_campaign_json_is_byte_identical_to_from_reset() {
    let envs = [page_env(default_config(), 2), uart_env(default_config())];
    let run = |workers: usize, pool: Option<Arc<PrefixPool>>| {
        let mut campaign = Campaign::new()
            .envs(envs.iter().cloned())
            .fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne)
            .workers(workers);
        if let Some(pool) = pool {
            campaign = campaign.prefix_pool(pool);
        }
        campaign.run().expect("suite builds")
    };
    let reference = run(1, None);
    assert_eq!(reference.perf().forked_runs, 0);
    let pool = Arc::new(PrefixPool::new(16));
    for workers in [1usize, 8] {
        let forked = run(workers, Some(Arc::clone(&pool)));
        assert!(
            forked.perf().forked_runs > 0,
            "workers={workers}: {:?}",
            forked.perf()
        );
        assert_eq!(
            strip_perf(&reference.to_json()),
            strip_perf(&forked.to_json()),
            "workers={workers}"
        );
    }
    assert!(
        !pool.is_empty(),
        "prefixes captured once, reused across runs"
    );
}

/// The parallel assembly front-end is perf-only. For a well-formed
/// suite the perf-stripped report JSON — which pins every
/// image-dependent observable: verdicts, instruction and cycle counts,
/// console and UART bytes — is byte-identical whatever the worker
/// count or front-end mode, so the built images are too. For a
/// malformed source the campaign fails with the identical
/// `CampaignError`, attributed to the first failing job in plan order,
/// never to whichever worker happened to parse first.
#[test]
fn parallel_frontend_is_schedule_independent() {
    let good = [page_env(default_config(), 2), uart_env(default_config())];
    let run = |workers: usize, parallel: bool| {
        Campaign::new()
            .envs(good.iter().cloned())
            .platforms([
                PlatformId::GoldenModel,
                PlatformId::RtlSim,
                PlatformId::GateSim,
            ])
            .workers(workers)
            .parallel_frontend(parallel)
            .run()
            .expect("suite builds")
    };
    let reference = strip_perf(&run(1, false).to_json());
    for workers in [1usize, 8] {
        assert_eq!(
            reference,
            strip_perf(&run(workers, true).to_json()),
            "parallel front-end, workers={workers}"
        );
    }

    // Two malformed cells in different envs: if attribution followed
    // build completion order, racing workers could report either one.
    let broken: Vec<ModuleTestEnv> = [("ALPHA", 1usize), ("BETA", 3)]
        .into_iter()
        .map(|(name, bad)| {
            let cells: Vec<TestCell> = (0..4)
                .map(|i| {
                    let source = if i == bad {
                        ".INCLUDE Globals.inc\n_main:\n    NOT_AN_OPCODE ArgA, #1\n    RETURN\n"
                    } else {
                        ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n"
                    };
                    TestCell::new(format!("TEST_{i}"), "generated", source)
                })
                .collect();
            ModuleTestEnv::new(
                name,
                EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
                cells,
            )
        })
        .collect();
    let fail = |workers: usize, parallel: bool| {
        let error = Campaign::new()
            .envs(broken.iter().cloned())
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .workers(workers)
            .parallel_frontend(parallel)
            .run()
            .expect_err("malformed source must not build");
        match error {
            advm::campaign::CampaignError::Build {
                env,
                test_id,
                platform,
                source,
            } => (env, test_id, platform, source.to_string()),
            other => panic!("expected a build error, got {other}"),
        }
    };
    let reference = fail(1, false);
    for workers in [1usize, 8] {
        assert_eq!(reference, fail(workers, true), "workers={workers}");
    }
}
