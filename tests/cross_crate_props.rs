//! Cross-crate property tests: invariants that hold over randomised
//! inputs spanning assembler, SoC model, simulator and methodology.

use advm::env::EnvConfig;
use advm::porting::{port_env, test_files_touched};
use advm::presets::page_env;
use advm_soc::{DerivativeId, GlobalsSpec, PlatformId};
use proptest::prelude::*;

fn arb_derivative() -> impl Strategy<Value = DerivativeId> {
    prop_oneof![
        Just(DerivativeId::Sc88A),
        Just(DerivativeId::Sc88B),
        Just(DerivativeId::Sc88C),
        Just(DerivativeId::Sc88D),
    ]
}

fn arb_platform() -> impl Strategy<Value = PlatformId> {
    prop_oneof![
        Just(PlatformId::GoldenModel),
        Just(PlatformId::RtlSim),
        Just(PlatformId::GateSim),
        Just(PlatformId::Accelerator),
        Just(PlatformId::Bondout),
        Just(PlatformId::ProductSilicon),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every (derivative, platform) globals file assembles standalone.
    #[test]
    fn any_globals_file_assembles(d in arb_derivative(), p in arb_platform()) {
        let globals = GlobalsSpec::new(advm_soc::Derivative::from_id(d), p).render();
        let program = advm_asm::assemble_str(&globals.text());
        prop_assert!(program.is_ok(), "{d:?}/{p:?}: {:?}", program.err());
    }

    /// Porting never touches test files, whatever the source and target.
    #[test]
    fn porting_never_touches_tests(
        from_d in arb_derivative(), from_p in arb_platform(),
        to_d in arb_derivative(), to_p in arb_platform(),
    ) {
        let env = page_env(EnvConfig::new(from_d, from_p), 2);
        let outcome = port_env(&env, EnvConfig::new(to_d, to_p));
        prop_assert_eq!(test_files_touched(&outcome.changes), 0);
    }

    /// A ported environment always builds and its first test passes.
    #[test]
    fn ported_env_always_green(d in arb_derivative(), p in arb_platform()) {
        let env = page_env(EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel), 1);
        let ported = port_env(&env, EnvConfig::new(d, p)).env;
        let result = advm::build::run_cell(&ported, "TEST_PAGE_SELECT_01");
        prop_assert!(result.as_ref().map(|r| r.passed()).unwrap_or(false),
            "{d:?}/{p:?}: {result:?}");
    }

    /// Tree rendering and reconstruction are inverse operations for any
    /// configuration.
    #[test]
    fn env_tree_roundtrip(d in arb_derivative(), p in arb_platform()) {
        let env = page_env(EnvConfig::new(d, p), 2);
        let rebuilt = advm::ModuleTestEnv::from_tree("PAGE", &env.tree());
        prop_assert_eq!(rebuilt.expect("tree is complete"), env);
    }

    /// Random seeded globals instances always assemble (gen crate x asm
    /// crate).
    #[test]
    fn random_globals_assemble(d in arb_derivative(), p in arb_platform(), seed in 0u64..1000) {
        let constraints = advm_gen::GlobalsConstraints::new(d, p).with_test_page_count(4);
        let file = advm_gen::generate(&constraints, seed).expect("space non-empty");
        prop_assert!(advm_asm::assemble_str(&file.text()).is_ok());
    }
}
