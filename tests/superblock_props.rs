//! Cross-crate superblock equivalence: fuzz-generated programs executed
//! through full campaigns must produce byte-identical (perf-stripped)
//! reports whether the block tier is on or off, and whether one worker
//! or eight execute the matrix. The block tier may only ever show up in
//! the measured `"perf"` object.

use advm::campaign::Campaign;
use advm::fuzz::program_env;
use advm_fuzz::ProgramSource;
use advm_soc::PlatformId;

use proptest::prelude::*;

/// Strips the measured `"perf":{...}` object out of a report JSON (wall
/// time, steps/sec and the block counters live there; everything
/// verdict-bearing stays).
fn strip_perf(json: &str) -> String {
    let mut out = json.to_owned();
    while let Some(start) = out.find("\"perf\":{") {
        let brace = start + "\"perf\":".len();
        let mut depth = 0usize;
        let mut end = brace;
        for (i, c) in out[brace..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = brace + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = if out[end..].starts_with(',') {
            end + 1
        } else {
            end
        };
        out.replace_range(start..end, "");
    }
    out
}

fn campaign(seed: u64, superblocks: bool, workers: usize) -> String {
    let mut campaign = Campaign::new()
        .platforms(PlatformId::ALL)
        .superblocks(superblocks)
        .workers(workers);
    for program in ProgramSource::new(seed).generate(3) {
        campaign = campaign.env(program_env(&program));
    }
    campaign.run().expect("fuzz programs must build").to_json()
}

proptest! {
    // Each case is 4 six-platform campaigns; a few cases keep the
    // property meaningful without dominating suite runtime.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any generation seed: block-mode and per-instruction
    /// campaigns over the same fuzz programs — sharded over one worker
    /// or eight — agree byte-for-byte once perf is stripped.
    #[test]
    fn fuzz_campaign_reports_are_block_mode_independent(seed in any::<u64>()) {
        let blocked = strip_perf(&campaign(seed, true, 1));
        prop_assert_eq!(&blocked, &strip_perf(&campaign(seed, false, 1)));
        prop_assert_eq!(&blocked, &strip_perf(&campaign(seed, true, 8)));
        prop_assert_eq!(&blocked, &strip_perf(&campaign(seed, false, 8)));
    }
}

/// The block tier's perf counters surface through the campaign report:
/// a default (blocks-on) run over straight-line-heavy fuzz programs
/// dispatches blocks; the same campaign with blocks off reports zeros,
/// with identical verdicts.
#[test]
fn block_counters_reach_campaign_perf_and_stay_perf_only() {
    let build = |superblocks: bool| {
        let mut campaign = Campaign::new()
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .superblocks(superblocks);
        for program in ProgramSource::new(0xB10C).generate(4) {
            campaign = campaign.env(program_env(&program));
        }
        campaign.run().expect("fuzz programs must build")
    };
    let on = build(true);
    let off = build(false);
    assert!(on.perf().blocks_built > 0, "{:?}", on.perf());
    assert!(on.perf().block_dispatches > 0, "{:?}", on.perf());
    assert!(
        on.perf().block_insns <= on.perf().decode_hits,
        "block insns are a subset of hits: {:?}",
        on.perf()
    );
    assert_eq!(off.perf().blocks_built, 0, "{:?}", off.perf());
    assert_eq!(off.perf().block_dispatches, 0);
    assert_eq!(off.perf().block_insns, 0);
    assert_eq!(strip_perf(&on.to_json()), strip_perf(&off.to_json()));
}
