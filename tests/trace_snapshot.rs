//! Golden snapshot of the instruction-level trace: the no-fault
//! execution path must be byte-stable.
//!
//! The fault catalog threads injection hooks through every peripheral
//! and the bus; this test pins the golden model's retirement stream for
//! one seed cell against a committed snapshot, so a hook that perturbs
//! the *no-fault* path (an accidental `if` inversion, a skew applied
//! unconditionally) fails loudly instead of shifting verdicts silently.

use advm::build::build_cell;
use advm::presets::{default_config, page_env};
use advm_sim::{DecodedProgram, ExecTrace, Platform, PlatformFault};
use advm_soc::{Derivative, PlatformId};

/// Committed golden-model trace of `PAGE/TEST_PAGE_SELECT_01`.
const GOLDEN_TRACE: &str = include_str!("golden/trace_page_select_01.txt");

/// Traces one run of the seed cell on a platform built by `make`.
fn traced_run(make: impl FnOnce(&Derivative) -> Platform) -> ExecTrace {
    let env = page_env(default_config(), 1);
    let image = build_cell(&env, "TEST_PAGE_SELECT_01").expect("seed cell builds");
    let derivative = Derivative::sc88a();
    let mut platform = make(&derivative);
    platform.enable_trace(1 << 16);
    platform.load_image(&image);
    let result = platform.run();
    assert!(result.passed(), "seed cell stays green: {result}");
    platform.trace().expect("debug-visible platform").clone()
}

fn golden() -> ExecTrace {
    traced_run(|d| Platform::new(PlatformId::GoldenModel, d))
}

#[test]
fn golden_trace_is_byte_stable_across_runs() {
    let first = golden();
    let second = golden();
    assert_eq!(first.signature(), second.signature());
    assert_eq!(first.disassembly(), second.disassembly());
    assert_eq!(first.records(), second.records());
    assert_eq!(first.dropped(), 0, "window must hold the whole run");
}

#[test]
fn golden_trace_matches_committed_snapshot() {
    let trace = golden();
    assert_eq!(
        trace.disassembly(),
        GOLDEN_TRACE,
        "the no-fault instruction stream changed; if intentional, \
         regenerate tests/golden/trace_page_select_01.txt"
    );
}

#[test]
fn explicit_no_fault_platform_matches_the_default() {
    // `Platform::with_fault(.., PlatformFault::None)` must be the same
    // machine as `Platform::new` — the injection plumbing is inert.
    let plain = golden();
    let explicit =
        traced_run(|d| Platform::with_fault(PlatformId::GoldenModel, d, PlatformFault::None));
    assert_eq!(plain.signature(), explicit.signature());
    assert_eq!(plain.disassembly(), explicit.disassembly());
}

#[test]
fn decode_cache_modes_preserve_the_golden_trace() {
    // The predecoded-instruction cache is a pure memoisation: the traced
    // stream must be byte-identical with the cache disabled, enabled
    // (lazy), and seeded from a shared predecode artifact.
    let plain = golden();
    let uncached = traced_run(|d| {
        let mut p = Platform::new(PlatformId::GoldenModel, d);
        p.set_decode_cache(false);
        p
    });
    assert_eq!(plain.signature(), uncached.signature());
    assert_eq!(plain.disassembly(), uncached.disassembly());

    let env = page_env(default_config(), 1);
    let image = build_cell(&env, "TEST_PAGE_SELECT_01").expect("seed cell builds");
    let decoded = DecodedProgram::from_image(&image);
    let derivative = Derivative::sc88a();
    let mut preloaded = Platform::new(PlatformId::GoldenModel, &derivative);
    preloaded.enable_trace(1 << 16);
    preloaded.load_prebuilt(&image, &decoded);
    let result = preloaded.run();
    assert!(result.passed(), "{result}");
    assert_eq!(result.decode.misses, 0, "artifact covers the whole image");
    let trace = preloaded.trace().expect("debug-visible platform");
    assert_eq!(plain.signature(), trace.signature());
    assert_eq!(plain.disassembly(), GOLDEN_TRACE);
}

#[test]
fn timing_only_fault_leaves_the_instruction_stream_alone() {
    // Extra bus wait-states change cycle counts, never the architectural
    // stream of a test with no timing dependence: the trace signature is
    // identical even on the faulted platform.
    let plain = golden();
    let waity = traced_run(|d| {
        Platform::with_fault(
            PlatformId::GoldenModel,
            d,
            PlatformFault::BusExtraWaitStates,
        )
    });
    assert_eq!(plain.signature(), waity.signature());
}
