//! Golden SaveState blob: the serialized machine format must be
//! byte-stable.
//!
//! A snapshot captured today must restore tomorrow — campaigns fork
//! from pooled snapshots, and any silent change to the wire format
//! (field reorder, width change, RLE tweak) would corrupt every stored
//! blob without tripping a single in-process test, because capture and
//! restore would drift together. This test pins the serialized bytes of
//! one deterministic machine state against a committed blob; the format
//! may only change together with a `SAVESTATE_VERSION` bump.

use advm::build::build_cell;
use advm::presets::{default_config, page_env};
use advm_sim::{Platform, PlatformFault, SaveState, SAVESTATE_VERSION};
use advm_soc::{Derivative, PlatformId};

/// Committed golden-model snapshot: `PAGE/TEST_PAGE_SELECT_01` paused
/// after exactly 40 retired instructions.
const GOLDEN_BLOB: &[u8] = include_bytes!("golden/savestate_v1.bin");

/// Reproduces the committed machine state from source.
fn captured() -> SaveState {
    let env = page_env(default_config(), 1);
    let image = build_cell(&env, "TEST_PAGE_SELECT_01").expect("seed cell builds");
    let mut platform = Platform::new(PlatformId::GoldenModel, &Derivative::sc88a());
    platform.load_image(&image);
    platform.set_fuel(40);
    platform.run();
    platform.snapshot()
}

#[test]
fn savestate_blob_is_byte_stable() {
    let blob = captured();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/savestate_v1.bin"),
            blob.as_bytes(),
        )
        .expect("regenerate golden blob");
        return;
    }
    assert_eq!(
        blob.as_bytes(),
        GOLDEN_BLOB,
        "the SaveState wire format changed — this silently corrupts \
         every stored snapshot. If the change is intentional, bump the \
         version byte (SAVESTATE_VERSION) and regenerate the blob with \
         `UPDATE_GOLDEN=1 cargo test --test savestate_golden`"
    );
}

#[test]
fn committed_blob_parses_and_resumes_to_a_green_finish() {
    let state = SaveState::from_bytes(GOLDEN_BLOB).expect("golden blob parses");
    assert_eq!(state.version(), SAVESTATE_VERSION);
    let mut resumed = Platform::from_snapshot(&state, &Derivative::sc88a(), PlatformFault::None)
        .expect("golden blob restores");
    resumed.set_fuel(advm_sim::DEFAULT_FUEL);
    let result = resumed.run();
    assert!(
        result.passed(),
        "a machine resumed from the committed blob finishes the seed \
         cell green: {result}"
    );
}
