//! Cross-crate integration tests: the full ADVM story, end to end.
//!
//! Each test walks a complete scenario through assembler, SoC model,
//! simulator and methodology engine — the scenarios §2–§4 of the paper
//! narrate.

use advm::audit::{CellOutcome, FaultAudit};
use advm::basefuncs::BaseFuncsStyle;
use advm::build::{build_cell, run_cell};
use advm::campaign::Campaign;
use advm::env::{EnvConfig, ModuleTestEnv, TestCell};
use advm::porting::{port_env, test_files_touched};
use advm::presets::{default_config, es_env, page_env, standard_system};
use advm::release::ReleaseStore;
use advm::system::SystemVerificationEnv;
use advm_sim::{Platform, PlatformFault};
use advm_soc::{Derivative, DerivativeId, EsVersion, PlatformId};

/// Workspace smoke test: the shortest possible pass — hand-assemble a
/// raw mailbox-reporting program, run the identical image on all six
/// platforms, and require the divergence checker to see full agreement.
///
/// This is the canary for the whole toolchain (assembler → image →
/// every platform model → comparator); if it fails, ignore everything
/// below it and fix this first.
#[test]
fn smoke_golden_path_agrees_everywhere() {
    let program = advm_asm::assemble_str(
        "\
_main:
    LOAD d1, #0x600D0000
    STORE [0xEFF00], d1
    STORE [0xEFF08], d1
",
    )
    .expect("smoke program assembles");
    let mut image = advm_asm::Image::new();
    image.load_program(&program).expect("smoke program links");

    let derivative = Derivative::sc88a();
    let results: Vec<_> = PlatformId::ALL
        .into_iter()
        .map(|id| advm_sim::platform::run_image(id, &derivative, &image))
        .collect();
    assert_eq!(results.len(), 6, "the paper's six platforms");
    for (id, result) in PlatformId::ALL.into_iter().zip(&results) {
        assert!(result.passed(), "{id:?} failed the golden path: {result}");
    }

    let report = advm_sim::compare(&results).expect("six results to compare");
    assert!(report.consistent, "golden path must not diverge:\n{report}");
    assert!(
        report.divergent.is_empty(),
        "no platform is the odd one out:\n{report}"
    );
}

/// The complete Figure 6 narrative: one test source survives a spec
/// change and a derivative change purely through `Globals.inc`.
#[test]
fn figure6_full_narrative() {
    let env = page_env(default_config(), 2);

    // Paper defaults visible in the generated globals.
    assert!(env.globals_text().contains("PAGE_FIELD_SIZE .EQU 0x5"));
    assert!(env
        .globals_text()
        .contains("PAGE_FIELD_START_POSITION .EQU 0x0"));

    let baseline_result = run_cell(&env, "TEST_PAGE_SELECT_01").expect("builds");
    assert!(baseline_result.passed());

    // Spec change: field shifted by one (SC88-B).
    let spec_change = port_env(
        &env,
        EnvConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel),
    );
    assert_eq!(test_files_touched(&spec_change.changes), 0);
    assert!(spec_change
        .env
        .globals_text()
        .contains("PAGE_FIELD_START_POSITION .EQU 0x1"));
    assert!(run_cell(&spec_change.env, "TEST_PAGE_SELECT_01")
        .unwrap()
        .passed());

    // Derivative change: field widened (SC88-C), more pages available.
    let derivative_change = port_env(
        &env,
        EnvConfig::new(DerivativeId::Sc88C, PlatformId::GoldenModel),
    );
    assert_eq!(test_files_touched(&derivative_change.changes), 0);
    assert!(derivative_change
        .env
        .globals_text()
        .contains("PAGE_FIELD_SIZE .EQU 0x6"));
    assert!(run_cell(&derivative_change.env, "TEST_PAGE_SELECT_01")
        .unwrap()
        .passed());
}

/// The complete Figure 7 narrative: the ES library changes under the
/// environment; the abstraction layer is the single point of repair.
#[test]
fn figure7_full_narrative() {
    // History: v1-only wrappers over the v1 ROM — green.
    let v1_config = default_config().with_style(BaseFuncsStyle::V1Only);
    let env = es_env(v1_config);
    for cell in env.cells() {
        assert!(
            run_cell(&env, cell.id()).unwrap().passed(),
            "{} green on v1",
            cell.id()
        );
    }

    // Event: ES v2 ships (swapped input registers). Wrapped tests break.
    let stale = port_env(&env, v1_config.with_es_version(EsVersion::V2)).env;
    let broken: Vec<&str> = stale
        .cells()
        .iter()
        .filter(|c| !run_cell(&stale, c.id()).unwrap().passed())
        .map(|c| c.id())
        .collect();
    assert!(
        broken.contains(&"TEST_ES_NVM_WRITE"),
        "swapped NVM args must break: {broken:?}"
    );
    assert!(
        broken.contains(&"TEST_ES_CHECKSUM"),
        "moved result register must break"
    );

    // Repair: one file — the base functions — adapts to ES_VERSION.
    let fix = port_env(
        &stale,
        stale.config().with_style(BaseFuncsStyle::VersionAware),
    );
    assert_eq!(
        test_files_touched(&fix.changes),
        0,
        "tests remain untouched"
    );
    assert!(fix
        .changes
        .change("ES_WRAP/Abstraction_Layer/Base_Functions.asm")
        .is_some());
    for cell in fix.env.cells() {
        assert!(
            run_cell(&fix.env, cell.id()).unwrap().passed(),
            "{} green again",
            cell.id()
        );
    }
}

/// §1's platform claim: the system suite passes everywhere, and a bug in
/// one platform is caught as a divergence, not silence.
#[test]
fn platform_matrix_and_divergence() {
    let envs = standard_system(default_config());
    let report = Campaign::new()
        .envs(envs.iter().cloned())
        .run()
        .expect("builds");
    assert_eq!(report.failed(), 0, "matrix:\n{}", report.matrix());
    assert!(report.total() >= 90, "8 envs x 6 platforms");
    assert!(
        report.cache_hits() > 0,
        "platform-independent cells must dedupe across golden/RTL"
    );

    let report = Campaign::new()
        .envs(envs)
        .fault(PlatformId::GateSim, PlatformFault::TimerNeverExpires)
        .run()
        .expect("builds");
    let divergences = report.divergences();
    assert!(!divergences.is_empty(), "a gate-sim timer bug must diverge");
    for (_, d) in divergences {
        assert_eq!(d.divergent, vec![PlatformId::GateSim]);
    }
}

/// Faults the audited suite is *known* not to kill, listed explicitly so
/// a new escape fails the gate instead of being silently accepted. Every
/// entry must stay an escape; remove it when the suite learns to kill it.
const KNOWN_ESCAPES: &[(PlatformFault, PlatformId)] = &[];

/// The suite-strength gate: every catalog fault injected into the RTL
/// platform must be killed by the seed suite plus one escape-driven
/// exploration round — the paper's detection claim, measured instead of
/// assumed.
#[test]
fn fault_matrix_suite_strength_gate() {
    let report = FaultAudit::new()
        .platforms([PlatformId::RtlSim])
        .scenarios(8)
        .fuel(400_000)
        .run()
        .expect("audit runs");
    assert!(report.faults().len() >= 10, "catalog must stay ≥ 10 faults");
    assert_eq!(report.broken(), 0, "no broken cells:\n{}", report.matrix());

    for &fault in report.faults() {
        let known = KNOWN_ESCAPES.iter().any(|(f, _)| *f == fault);
        if known {
            assert!(
                !report.killed(fault),
                "{fault} is killed now — remove it from KNOWN_ESCAPES"
            );
        } else {
            assert!(
                report.killed(fault),
                "{fault} escaped the suite:\n{}",
                report.matrix()
            );
        }
    }
    assert!(
        report.kill_rate() >= 0.8,
        "kill rate {:.2} below the 80% bar:\n{}",
        report.kill_rate(),
        report.matrix()
    );

    // The closed loop must have mattered: at least one fault survives the
    // seed suite and dies only to escape-driven generated stimulus.
    let second_round_kills: Vec<PlatformFault> = report
        .cells()
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::Detected { round: 2, .. }))
        .map(|c| c.fault)
        .collect();
    assert!(
        !second_round_kills.is_empty(),
        "expected escapes closed by generation:\n{}",
        report.matrix()
    );
    assert!(report.scenarios_generated() >= 8);

    // Kill counts attribute detections to named tests.
    assert!(!report.kill_counts().is_empty());
    let (strongest, kills) = &report.kill_counts()[0];
    assert!(*kills >= 1, "{strongest} must kill something");
}

/// The regression release discipline of §2–3: frozen labels are immune
/// to live development, and the system release composes sub-labels.
#[test]
fn release_flow() {
    let mut store = ReleaseStore::new();
    let sys = SystemVerificationEnv::new(
        "ADVM_System_Verification_Environment",
        standard_system(default_config()),
    );
    assert!(sys.validate().is_empty());

    let release = sys
        .compose_release(&mut store, "SYS-1.0")
        .expect("fresh labels");
    assert_eq!(release.components().len(), sys.envs().len());

    // Thaw and run a component from the frozen label.
    let thawed = store.thaw_system("SYS-1.0").expect("intact");
    let report = Campaign::new()
        .envs(thawed)
        .platform(PlatformId::GoldenModel)
        .run()
        .expect("builds");
    assert_eq!(report.failed(), 0);
}

/// The anti-pattern of Figure 2 actually bites: an environment whose
/// tests bypass the layer loses the porting property.
#[test]
fn violations_defeat_porting() {
    let config = default_config();
    let cells = vec![
        page_env(config, 1).cells()[0].clone(),
        advm::presets::violating_page_cell(1),
    ];
    let env = ModuleTestEnv::new("PAGE", config, cells);
    let violations = advm::check_env(&env);
    assert!(!violations.is_empty());

    let ported = port_env(
        &env,
        EnvConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel),
    )
    .env;
    assert!(run_cell(&ported, "TEST_PAGE_SELECT_01").unwrap().passed());
    assert!(!run_cell(&ported, "TEST_PAGE_ABUSE_01").unwrap().passed());
}

/// The same built image runs identically on debug-visible and black-box
/// platforms; only observability differs.
#[test]
fn debug_visibility_does_not_change_architecture() {
    let env = ModuleTestEnv::new(
        "PAGE",
        default_config(),
        vec![TestCell::new(
            "TEST_DBG",
            "debug markers",
            "\
.INCLUDE Globals.inc
_main:
    DBG #1
    DBG #2
    CALL Base_Report_Pass
    RETURN
",
        )],
    );
    let image = build_cell(&env, "TEST_DBG").expect("builds");
    let derivative = Derivative::sc88a();

    let mut golden = Platform::new(PlatformId::GoldenModel, &derivative);
    golden.load_image(&image);
    let golden_result = golden.run();

    let mut silicon = Platform::new(PlatformId::ProductSilicon, &derivative);
    silicon.load_image(&image);
    let silicon_result = silicon.run();

    assert!(golden_result.passed() && silicon_result.passed());
    assert_eq!(golden_result.dbg_markers, vec![1, 2]);
    assert!(silicon_result.dbg_markers.is_empty());
    assert_eq!(
        golden_result.insns, silicon_result.insns,
        "same instruction stream"
    );
}

/// Porting is involutive on the abstraction layer: A -> C -> A restores
/// the original environment bit-for-bit.
#[test]
fn port_roundtrip_is_identity() {
    let env = page_env(default_config(), 4);
    let there = port_env(
        &env,
        EnvConfig::new(DerivativeId::Sc88C, PlatformId::GateSim),
    )
    .env;
    let back = port_env(&there, env.config()).env;
    assert_eq!(back.tree(), env.tree());
}

/// All four derivatives expose their documented hardware differences
/// through the one bus implementation.
#[test]
fn derivative_hardware_differences_are_real() {
    // SC88-D moved the UART: the SC88-A address faults there.
    let mut bus_d = advm_sim::SocBus::new(
        &Derivative::sc88d(),
        PlatformId::GoldenModel,
        PlatformFault::None,
    );
    assert!(bus_d.read32(0xE_0000).is_err());
    assert!(bus_d.read32(0xE_0800).is_ok());

    // SC88-C honours six page bits where SC88-A masks to five.
    let mut bus_a = advm_sim::SocBus::new(
        &Derivative::sc88a(),
        PlatformId::GoldenModel,
        PlatformFault::None,
    );
    let mut bus_c = advm_sim::SocBus::new(
        &Derivative::sc88c(),
        PlatformId::GoldenModel,
        PlatformFault::None,
    );
    let raw = 40 | (1 << 8); // page 40 needs 6 bits
    bus_a.write32(0xE_0100, raw).unwrap();
    bus_c.write32(0xE_0100, raw).unwrap();
    let active_a = bus_a.read32(0xE_0104).unwrap() & 0x1F;
    let active_c = bus_c.read32(0xE_0104).unwrap() & 0x3F;
    assert_eq!(active_a, 40 & 0x1F, "SC88-A truncates to 5 bits");
    assert_eq!(active_c, 40, "SC88-C holds the full value");
}
