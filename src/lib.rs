//! Umbrella crate re-exporting the ADVM reproduction workspace.
//!
//! See [`advm`] for the methodology engine, [`advm_asm`] for the assembler,
//! [`advm_sim`] for the execution platforms, [`advm_soc`] for the SoC and
//! derivative models, and [`advm_gen`] for the coverage-driven scenario
//! engine.
//!
//! The project README below is included verbatim, so its code examples
//! compile and run as doc tests of this crate.
#![doc = include_str!("../README.md")]

pub use advm;
pub use advm_asm;
pub use advm_baseline;
pub use advm_gen;
pub use advm_isa;
pub use advm_metrics;
pub use advm_serve;
pub use advm_sim;
pub use advm_soc;
