//! `advm-cli` — drive the ADVM methodology from the command line.
//!
//! ```text
//! advm-cli scaffold <dir> [--tests N] [--derivative D] [--platform P]
//! advm-cli validate <dir> <env-name>
//! advm-cli check <dir> <env-name>              # abstraction-layer violations
//! advm-cli run <dir> <env-name> <test-id>
//! advm-cli regress <dir> <env-name> [--platform P | --all-platforms]
//!                  [--workers N] [--fuel N] [--json]
//! advm-cli explore [--rounds N] [--seed S] [--batch N] [--workers N]
//!                  [--derivative D] [--all-platforms] [--json]
//! advm-cli audit [--platforms P1,P2 | --all-platforms] [--workers N]
//!                [--scenarios N] [--seed S] [--fuel N] [--json]
//! advm-cli fuzz [--programs N] [--seed S] [--mine] [--workers N]
//!               [--fuel N] [--platforms P1,P2 | --all-platforms] [--json]
//! advm-cli port <dir> <env-name> --derivative D [--platform P]
//! advm-cli asm <file.asm>                      # assemble + listing
//! advm-cli serve --socket <path> [--workers N] [--cache N]
//! advm-cli submit --socket <path> [--watch] regress <dir> <env-name> [...]
//! advm-cli submit --socket <path> [--watch] audit [...]
//! advm-cli submit --socket <path> [--watch] explore [...]
//! advm-cli submit --socket <path> [--watch] fuzz [...]
//! advm-cli watch --socket <path> <job>
//! advm-cli status --socket <path>
//! advm-cli list --socket <path>
//! advm-cli cancel --socket <path> <job>
//! advm-cli shutdown --socket <path>
//! ```
//!
//! Environments on disk use exactly the paper's Figure 3 layout; `port`
//! rewrites only the abstraction layer and prints the change-set. The
//! `serve` family talks to the resident daemon (`advm-serve`): `submit`
//! reuses the `regress`/`audit`/`explore` flag surfaces verbatim, and
//! `watch` streams a job's NDJSON events to stdout.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use advm::audit::FaultAudit;
use advm::campaign::{Campaign, ProgressObserver};
use advm::env::{EnvConfig, ModuleTestEnv};
use advm::fsio::{read_tree, write_tree};
use advm::fuzz::Fuzz;
use advm::porting::port_env;
use advm::stimulus::Exploration;
use advm_serve::JobSpec;
use advm_soc::{DerivativeId, PlatformId};

/// One CLI failure: what went wrong, which token caused it (when a
/// specific one did), and whether the usage text helps.
///
/// Every error path funnels through here — unknown subcommands, missing
/// positionals and malformed flags used to format their own messages
/// three different ways (usage inline, usage missing, token missing).
#[derive(Debug, Clone, PartialEq, Eq)]
struct CliError {
    message: String,
    /// The offending argument, verbatim, when one token is to blame.
    token: Option<String>,
    /// Parse-level mistakes print the usage text; runtime failures
    /// (I/O, failing tests) don't.
    show_usage: bool,
}

impl CliError {
    /// A parse-level error blamed on one specific token.
    fn bad_token(what: &str, token: &str) -> Self {
        Self {
            message: format!("{what} `{token}`"),
            token: Some(token.to_owned()),
            show_usage: true,
        }
    }

    /// A parse-level error with no single token to blame.
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            token: None,
            show_usage: true,
        }
    }
}

/// Runtime failures carry a plain message and skip the usage text.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self {
            message,
            token: None,
            show_usage: false,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("advm-cli: {error}");
            if error.show_usage {
                eprint!("{}", usage());
            }
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("scaffold") => scaffold(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("regress") => regress(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("audit") => audit(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("port") => port(&args[1..]),
        Some("asm") => asm(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("submit") => submit(&args[1..]),
        Some("watch") => watch(&args[1..]),
        Some("status") => status(&args[1..]),
        Some("list") => list(&args[1..]),
        Some("cancel") => cancel(&args[1..]),
        Some("shutdown") => shutdown(&args[1..]),
        Some("help") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(CliError::bad_token("unknown command", other)),
    }
}

fn usage() -> &'static str {
    "\
usage:
  advm-cli scaffold <dir> [--tests N] [--derivative D] [--platform P]
  advm-cli validate <dir> <env-name>
  advm-cli check <dir> <env-name>
  advm-cli run <dir> <env-name> <test-id>
  advm-cli regress <dir> <env-name> [--platform P | --all-platforms]
                   [--workers N] [--fuel N] [--json]
  advm-cli explore [--rounds N] [--seed S] [--batch N] [--workers N]
                   [--derivative D] [--all-platforms] [--json]
  advm-cli audit [--platforms P1,P2 | --all-platforms] [--workers N]
                 [--scenarios N] [--seed S] [--fuel N] [--json]
  advm-cli fuzz [--programs N] [--seed S] [--mine] [--workers N]
                [--fuel N] [--platforms P1,P2 | --all-platforms] [--json]
  advm-cli port <dir> <env-name> --derivative D [--platform P]
  advm-cli asm <file.asm>
  advm-cli serve --socket <path> [--workers N] [--cache N]
  advm-cli submit --socket <path> [--watch] regress <dir> <env-name>
                  [--platform P | --all-platforms] [--workers N] [--fuel N]
  advm-cli submit --socket <path> [--watch] audit
                  [--platforms P1,P2 | --all-platforms] [--workers N]
                  [--scenarios N] [--seed S] [--fuel N]
  advm-cli submit --socket <path> [--watch] explore [--rounds N] [--seed S]
                  [--batch N] [--workers N] [--derivative D] [--all-platforms]
  advm-cli submit --socket <path> [--watch] fuzz [--programs N] [--seed S]
                  [--mine] [--workers N] [--fuel N]
                  [--platforms P1,P2 | --all-platforms]
  advm-cli watch --socket <path> <job>
  advm-cli status --socket <path>
  advm-cli list --socket <path>
  advm-cli cancel --socket <path> <job>
  advm-cli shutdown --socket <path>

explore runs closed-loop coverage-directed stimulus: round 1 draws
constrained-random Globals.inc scenarios, every later round biases its
draws toward the coverage holes the previous campaigns measured, and
each round prints its page/register coverage delta.

audit mutation-tests the testbench itself: every catalog fault is
injected into each audited platform (default: rtl), the seed suite runs
against the golden model, and each (fault, platform) cell is classified
detected / masked / broken. Escapes feed one coverage-directed scenario
round (--scenarios controls the batch) aimed at killing the survivors;
the final matrix, per-test kill counts and kill rate are printed.

fuzz generates constrained-random guest programs (deterministic per
seed, independent of worker count) and runs them differentially across
the target platforms (default: all six). With --mine, every program
first runs fault-free with the MMIO monitor armed, trace assertions are
mined from the captured traces, and the verification campaign re-checks
them on every run — catching faults the differential verdict cannot see.

serve starts the resident verification daemon on a Unix-domain socket;
submit/watch/status/list/cancel/shutdown talk to it. The daemon keeps
built images, predecoded programs and prefix snapshots warm across
jobs, so a resubmitted suite skips its builds (see the `artifact_hits`
perf counter in job reports and the `artifacts` block of `status`).

derivatives: SC88-A SC88-B SC88-C SC88-D
platforms:   golden rtl gate accel bondout silicon
"
}

fn parse_derivative(text: &str) -> Result<DerivativeId, CliError> {
    DerivativeId::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(text))
        .ok_or_else(|| CliError::bad_token("unknown derivative", text))
}

fn parse_platform(text: &str) -> Result<PlatformId, CliError> {
    PlatformId::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(text))
        .ok_or_else(|| CliError::bad_token("unknown platform", text))
}

/// Pulls `--flag value` pairs out of an argument list.
///
/// A value may not itself look like a flag: `--workers --json` is a
/// missing `--workers` value, not a request for `"--json"` workers —
/// silently swallowing the next flag used to turn one typo into two
/// bugs. A trailing valued flag with nothing after it errors the same
/// way.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, CliError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1).map(String::as_str) {
        Some(value) if !value.starts_with("--") => Ok(Some(value)),
        Some(_) | None => Err(CliError {
            message: format!("flag {flag} requires a value"),
            token: Some(flag.to_owned()),
            show_usage: true,
        }),
    }
}

fn positional(args: &[String], index: usize, what: &str) -> Result<String, CliError> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| !a.starts_with("--"))
        .filter(|(i, _)| {
            // Skip values consumed by a preceding value-taking flag. The
            // real index matters: matching by value would misclassify a
            // repeated argument (e.g. `run envs PAGE PAGE`) because every
            // occurrence would resolve to the first one's position.
            *i == 0
                || !args[*i - 1].starts_with("--")
                || FLAGS_WITHOUT_VALUE.contains(&args[*i - 1].as_str())
        })
        .map(|(_, a)| a)
        .nth(index)
        .cloned()
        .ok_or_else(|| CliError::usage(format!("missing {what}")))
}

/// Flags that take no value; a positional may directly follow them.
const FLAGS_WITHOUT_VALUE: [&str; 4] = ["--all-platforms", "--json", "--watch", "--mine"];

fn load_env(dir: &str, name: &str) -> Result<ModuleTestEnv, String> {
    let tree = read_tree(Path::new(dir)).map_err(|e| format!("reading `{dir}`: {e}"))?;
    ModuleTestEnv::from_tree(name, &tree)
        .map_err(|e| format!("environment `{name}` in `{dir}`: {e}"))
}

fn scaffold(args: &[String]) -> Result<(), CliError> {
    let dir = positional(args, 0, "target directory")?;
    let tests: usize = int_flag(args, "--tests")?.unwrap_or(3);
    let derivative = flag_value(args, "--derivative")?
        .map(parse_derivative)
        .transpose()?
        .unwrap_or(DerivativeId::Sc88A);
    let platform = flag_value(args, "--platform")?
        .map(parse_platform)
        .transpose()?
        .unwrap_or(PlatformId::GoldenModel);

    let env = advm::presets::page_env(EnvConfig::new(derivative, platform), tests);
    write_tree(Path::new(&dir), &env.tree()).map_err(|e| format!("writing `{dir}`: {e}"))?;
    println!(
        "scaffolded {} ({} tests, {} on {}) under {dir}",
        env.name(),
        tests,
        derivative.name(),
        platform
    );
    Ok(())
}

fn validate(args: &[String]) -> Result<(), CliError> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let tree = read_tree(Path::new(&dir)).map_err(|e| format!("reading `{dir}`: {e}"))?;
    let scoped: BTreeMap<String, String> = tree
        .into_iter()
        .filter(|(p, _)| p.starts_with(&format!("{name}/")))
        .collect();
    let issues = advm::validate_layout(&name, &scoped);
    if issues.is_empty() {
        println!("{name}: layout OK ({} files)", scoped.len());
        Ok(())
    } else {
        for issue in &issues {
            println!("{name}: {issue}");
        }
        Err(format!("{} layout issue(s)", issues.len()).into())
    }
}

fn check(args: &[String]) -> Result<(), CliError> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let env = load_env(&dir, &name)?;
    let violations = advm::check_env(&env);
    if violations.is_empty() {
        println!("{name}: no abstraction-layer violations");
        Ok(())
    } else {
        for v in &violations {
            println!("{v}");
        }
        Err(format!("{} violation(s)", violations.len()).into())
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let test_id = positional(args, 2, "test id")?;
    let env = load_env(&dir, &name)?;
    let result = advm::run_cell(&env, &test_id).map_err(|e| e.to_string())?;
    println!("{result}");
    if result.passed() {
        Ok(())
    } else {
        Err("test failed".to_owned().into())
    }
}

fn regress(args: &[String]) -> Result<(), CliError> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let env = load_env(&dir, &name)?;
    let json = args.iter().any(|a| a == "--json");

    // Bisection pinpoints the first divergent retired instruction of
    // every divergence the regression surfaces.
    let mut campaign = Campaign::new().env(env.clone()).bisect(true);
    campaign = if args.iter().any(|a| a == "--all-platforms") {
        campaign.platforms(PlatformId::ALL)
    } else {
        let platform = flag_value(args, "--platform")?
            .map(parse_platform)
            .transpose()?
            .unwrap_or(env.config().platform);
        campaign.platform(platform)
    };
    if let Some(workers) = int_flag(args, "--workers")? {
        campaign = campaign.workers(workers);
    }
    if let Some(fuel) = int_flag(args, "--fuel")? {
        campaign = campaign.fuel(fuel);
    }
    if !json {
        // Live progress streams to stderr; verdicts stay on stdout.
        campaign = campaign.observe(ProgressObserver::new());
    }

    let report = campaign.run().map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.matrix());
        println!(
            "{}/{} passed ({} cache hits, {} builds)",
            report.passed(),
            report.total(),
            report.cache_hits(),
            report.unique_builds()
        );
        println!("{}", perf_line(report.perf()));
        for (test, divergence) in report.divergences() {
            println!("divergence in {test}:\n{divergence}");
        }
    }
    if report.failed() == 0 {
        Ok(())
    } else {
        Err(format!("{} failure(s)", report.failed()).into())
    }
}

/// Renders one human-readable execution-perf line.
fn perf_line(perf: &advm::campaign::CampaignPerf) -> String {
    format!(
        "perf: {} insns in {:.1}ms ({:.2}M steps/s, decode hit rate {:.1}%)",
        perf.instructions,
        perf.wall.as_secs_f64() * 1e3,
        perf.steps_per_sec() / 1e6,
        100.0 * perf.decode_hit_rate(),
    )
}

/// Parses an integer-valued flag, reporting the offending value.
fn int_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError> {
    flag_value(args, flag)?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::bad_token(&format!("bad {flag} value"), v))
        })
        .transpose()
}

fn explore(args: &[String]) -> Result<(), CliError> {
    let json = args.iter().any(|a| a == "--json");
    let mut exploration = Exploration::new();
    if let Some(rounds) = int_flag(args, "--rounds")? {
        exploration = exploration.rounds(rounds);
    }
    if let Some(seed) = int_flag(args, "--seed")? {
        exploration = exploration.master_seed(seed);
    }
    if let Some(batch) = int_flag(args, "--batch")? {
        exploration = exploration.batch(batch);
    }
    if let Some(workers) = int_flag(args, "--workers")? {
        exploration = exploration.workers(workers);
    }
    if let Some(derivative) = flag_value(args, "--derivative")? {
        exploration = exploration.derivative(parse_derivative(derivative)?);
    }
    if args.iter().any(|a| a == "--all-platforms") {
        exploration = exploration.platforms(PlatformId::ALL);
    }

    let report = exploration.run().map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
        let last = report.rounds().last().expect("at least one round");
        println!(
            "final: {}/{} pages ({:.1}%), {:.1}% registers after {} rounds",
            last.pages_hit,
            report.page_space(),
            100.0 * last.page_coverage,
            100.0 * last.register_coverage,
            report.rounds().len(),
        );
    }
    if report.failed() == 0 {
        Ok(())
    } else {
        Err(format!("{} failing run(s)", report.failed()).into())
    }
}

fn audit(args: &[String]) -> Result<(), CliError> {
    let json = args.iter().any(|a| a == "--json");
    let mut audit = FaultAudit::new();
    if args.iter().any(|a| a == "--all-platforms") {
        audit = audit.platforms(PlatformId::ALL);
    } else if let Some(list) = flag_value(args, "--platforms")? {
        let platforms: Vec<PlatformId> = list
            .split(',')
            .map(parse_platform)
            .collect::<Result<_, _>>()?;
        audit = audit.platforms(platforms);
    }
    if let Some(workers) = int_flag(args, "--workers")? {
        audit = audit.workers(workers);
    }
    if let Some(scenarios) = int_flag(args, "--scenarios")? {
        audit = audit.scenarios(scenarios);
    }
    if let Some(seed) = int_flag(args, "--seed")? {
        audit = audit.seed(seed);
    }
    if let Some(fuel) = int_flag(args, "--fuel")? {
        audit = audit.fuel(fuel);
    }

    let report = audit.run().map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.matrix());
        let killed = report
            .faults()
            .iter()
            .filter(|&&f| report.killed(f))
            .count();
        println!(
            "kill rate: {killed}/{} faults ({:.1}%) across {} platform(s), {} suite tests, {} generated scenarios",
            report.faults().len(),
            100.0 * report.kill_rate(),
            report.platforms().len(),
            report.suite_tests(),
            report.scenarios_generated(),
        );
        println!("{}", perf_line(report.perf()));
        for cell in report.escapes() {
            println!("ESCAPE: {} on {}", cell.fault, cell.platform);
        }
        println!("strongest killers:");
        for (test, kills) in report.kill_counts().iter().take(5) {
            println!("  {kills:>3}  {test}");
        }
    }
    if report.broken() == 0 {
        Ok(())
    } else {
        Err(format!("{} broken audit cell(s)", report.broken()).into())
    }
}

fn fuzz(args: &[String]) -> Result<(), CliError> {
    let json = args.iter().any(|a| a == "--json");
    let mut fuzz = Fuzz::new();
    if let Some(programs) = int_flag(args, "--programs")? {
        fuzz = fuzz.programs(programs);
    }
    if let Some(seed) = int_flag(args, "--seed")? {
        fuzz = fuzz.seed(seed);
    }
    if args.iter().any(|a| a == "--mine") {
        fuzz = fuzz.mine(true);
    }
    if let Some(workers) = int_flag(args, "--workers")? {
        fuzz = fuzz.workers(workers);
    }
    if let Some(fuel) = int_flag(args, "--fuel")? {
        fuzz = fuzz.fuel(fuel);
    }
    if args.iter().any(|a| a == "--all-platforms") {
        fuzz = fuzz.platforms(PlatformId::ALL);
    } else if let Some(list) = flag_value(args, "--platforms")? {
        let platforms: Vec<PlatformId> = list
            .split(',')
            .map(parse_platform)
            .collect::<Result<_, _>>()?;
        fuzz = fuzz.platforms(platforms);
    }
    if !json {
        fuzz = fuzz.observe_with(std::sync::Arc::new(|| Box::new(ProgressObserver::new())));
    }

    let report = fuzz.run().map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.campaign().matrix());
        println!(
            "{} program(s) from seed {}, {} mined checker(s), {} violation(s)",
            report.programs(),
            report.seed(),
            report.mined().len(),
            report.violations().len(),
        );
        for checker in report.mined() {
            println!("  armed {}", checker.name());
        }
        println!("{}", perf_line(report.campaign().perf()));
        for v in report.violations() {
            println!(
                "VIOLATION: {}/{} @ {} {}: {}",
                v.env, v.test_id, v.platform, v.checker, v.detail
            );
        }
    }
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "{} failure(s), {} divergence(s), {} checker violation(s)",
            report.campaign().failed(),
            report.campaign().divergences().len(),
            report.violations().len(),
        )
        .into())
    }
}

fn port(args: &[String]) -> Result<(), CliError> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let env = load_env(&dir, &name)?;
    let derivative = flag_value(args, "--derivative")?
        .map(parse_derivative)
        .transpose()?
        .unwrap_or(env.config().derivative);
    let platform = flag_value(args, "--platform")?
        .map(parse_platform)
        .transpose()?
        .unwrap_or(env.config().platform);

    let outcome = port_env(&env, EnvConfig::new(derivative, platform));
    write_tree(Path::new(&dir), &outcome.env.tree())
        .map_err(|e| format!("writing `{dir}`: {e}"))?;
    println!(
        "ported {name} to {} on {platform}:\n{}",
        derivative.name(),
        outcome.changes
    );
    println!(
        "test files touched: {}",
        advm::porting::test_files_touched(&outcome.changes)
    );
    Ok(())
}

fn asm(args: &[String]) -> Result<(), CliError> {
    let file = positional(args, 0, "assembler source file")?;
    let path = PathBuf::from(&file);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading `{file}`: {e}"))?;
    let program = advm_asm::assemble_str(&text).map_err(|e| e.to_string())?;
    print!("{}", program.render_listing());
    println!("; {} bytes emitted", program.size_bytes());
    Ok(())
}

// ---------------------------------------------------------------------------
// Daemon subcommands (`serve` plus its clients).
// ---------------------------------------------------------------------------

/// The daemon socket path every `serve`-family subcommand requires.
fn socket_path(args: &[String]) -> Result<PathBuf, CliError> {
    flag_value(args, "--socket")?
        .map(PathBuf::from)
        .ok_or_else(|| CliError::usage("missing required flag --socket"))
}

/// Builds the [`JobSpec`] a `submit` argument list describes. The flag
/// surface is the local `regress`/`audit`/`explore` one, verbatim.
fn submit_spec(args: &[String]) -> Result<JobSpec, CliError> {
    let all_platforms = args.iter().any(|a| a == "--all-platforms");
    match positional(args, 0, "job kind (regress|audit|explore|fuzz)")?.as_str() {
        "regress" => {
            let dir = positional(args, 1, "directory")?;
            // The daemon resolves the path from its own working
            // directory; submit an absolute one when the tree exists
            // locally so both sides mean the same files.
            let dir = std::fs::canonicalize(&dir)
                .map(|p| p.display().to_string())
                .unwrap_or(dir);
            Ok(JobSpec::Regress {
                dir,
                env: positional(args, 2, "environment name")?,
                platforms: flag_value(args, "--platform")?
                    .map(parse_platform)
                    .transpose()?
                    .into_iter()
                    .collect(),
                all_platforms,
                workers: int_flag(args, "--workers")?,
                fuel: int_flag(args, "--fuel")?,
            })
        }
        "audit" => Ok(JobSpec::Audit {
            platforms: flag_value(args, "--platforms")?
                .map(|list| list.split(',').map(parse_platform).collect())
                .transpose()?
                .unwrap_or_default(),
            all_platforms,
            scenarios: int_flag(args, "--scenarios")?,
            seed: int_flag(args, "--seed")?,
            workers: int_flag(args, "--workers")?,
            fuel: int_flag(args, "--fuel")?,
        }),
        "explore" => Ok(JobSpec::Explore {
            rounds: int_flag(args, "--rounds")?,
            seed: int_flag(args, "--seed")?,
            batch: int_flag(args, "--batch")?,
            workers: int_flag(args, "--workers")?,
            derivative: flag_value(args, "--derivative")?
                .map(parse_derivative)
                .transpose()?,
            all_platforms,
        }),
        "fuzz" => Ok(JobSpec::Fuzz {
            programs: int_flag(args, "--programs")?,
            seed: int_flag(args, "--seed")?,
            mine: args.iter().any(|a| a == "--mine"),
            platforms: flag_value(args, "--platforms")?
                .map(|list| list.split(',').map(parse_platform).collect())
                .transpose()?
                .unwrap_or_default(),
            all_platforms,
            workers: int_flag(args, "--workers")?,
            fuel: int_flag(args, "--fuel")?,
        }),
        other => Err(CliError::bad_token("unknown job kind", other)),
    }
}

#[cfg(unix)]
fn connect(args: &[String]) -> Result<advm_serve::Client, CliError> {
    let path = socket_path(args)?;
    advm_serve::Client::connect(&path)
        .map_err(|e| format!("connecting to `{}`: {e}", path.display()).into())
}

/// Streams one job to completion on stdout; the exit status follows the
/// job's own verdict.
#[cfg(unix)]
fn watch_job(client: &mut advm_serve::Client, job: u64) -> Result<(), CliError> {
    let done = client
        .watch(job, |line| println!("{line}"))
        .map_err(|e| format!("watching job {job}: {e}"))?;
    println!("{done}");
    let ok = advm::wire::JsonValue::parse(&done)
        .ok()
        .and_then(|v| v.bool_field("ok").ok())
        .unwrap_or(false);
    if ok {
        Ok(())
    } else {
        Err(format!("job {job} did not succeed").into())
    }
}

#[cfg(unix)]
fn serve(args: &[String]) -> Result<(), CliError> {
    use advm_serve::daemon::{Daemon, DaemonConfig};

    let path = socket_path(args)?;
    let mut config = DaemonConfig::default();
    if let Some(workers) = int_flag(args, "--workers")? {
        config.workers = workers;
    }
    if let Some(cache) = int_flag(args, "--cache")? {
        config.cache_capacity = cache;
    }
    let server = advm_serve::Server::bind(Daemon::start(config), &path)
        .map_err(|e| format!("binding `{}`: {e}", path.display()))?;
    eprintln!("advm-cli: serving on {}", path.display());
    server
        .run()
        .map_err(|e| format!("serving `{}`: {e}", path.display()).into())
}

#[cfg(unix)]
fn submit(args: &[String]) -> Result<(), CliError> {
    let spec = submit_spec(args)?;
    let mut client = connect(args)?;
    let job = client
        .submit(spec)
        .map_err(|e| format!("submitting: {e}"))?;
    println!("{{\"ok\":true,\"job\":{job}}}");
    if args.iter().any(|a| a == "--watch") {
        watch_job(&mut client, job)?;
    }
    Ok(())
}

#[cfg(unix)]
fn watch(args: &[String]) -> Result<(), CliError> {
    let job = positional(args, 0, "job id")?;
    let job: u64 = job
        .parse()
        .map_err(|_| CliError::bad_token("bad job id", &job))?;
    watch_job(&mut connect(args)?, job)
}

#[cfg(unix)]
fn status(args: &[String]) -> Result<(), CliError> {
    let line = connect(args)?
        .status()
        .map_err(|e| format!("status: {e}"))?;
    println!("{line}");
    Ok(())
}

#[cfg(unix)]
fn list(args: &[String]) -> Result<(), CliError> {
    let line = connect(args)?.list().map_err(|e| format!("list: {e}"))?;
    println!("{line}");
    Ok(())
}

#[cfg(unix)]
fn cancel(args: &[String]) -> Result<(), CliError> {
    let job = positional(args, 0, "job id")?;
    let job: u64 = job
        .parse()
        .map_err(|_| CliError::bad_token("bad job id", &job))?;
    let line = connect(args)?
        .cancel(job)
        .map_err(|e| format!("cancelling job {job}: {e}"))?;
    println!("{line}");
    Ok(())
}

#[cfg(unix)]
fn shutdown(args: &[String]) -> Result<(), CliError> {
    let line = connect(args)?
        .shutdown()
        .map_err(|e| format!("shutdown: {e}"))?;
    println!("{line}");
    Ok(())
}

#[cfg(not(unix))]
fn unsupported() -> Result<(), CliError> {
    Err(
        "daemon subcommands need Unix-domain sockets on this platform"
            .to_owned()
            .into(),
    )
}

#[cfg(not(unix))]
fn serve(_args: &[String]) -> Result<(), CliError> {
    unsupported()
}

#[cfg(not(unix))]
fn submit(_args: &[String]) -> Result<(), CliError> {
    unsupported()
}

#[cfg(not(unix))]
fn watch(_args: &[String]) -> Result<(), CliError> {
    unsupported()
}

#[cfg(not(unix))]
fn status(_args: &[String]) -> Result<(), CliError> {
    unsupported()
}

#[cfg(not(unix))]
fn list(_args: &[String]) -> Result<(), CliError> {
    unsupported()
}

#[cfg(not(unix))]
fn cancel(_args: &[String]) -> Result<(), CliError> {
    unsupported()
}

#[cfg(not(unix))]
fn shutdown(_args: &[String]) -> Result<(), CliError> {
    unsupported()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn positional_skips_flag_values() {
        let a = args(&["dir", "--platform", "rtl", "NAME"]);
        assert_eq!(positional(&a, 0, "dir").unwrap(), "dir");
        assert_eq!(positional(&a, 1, "name").unwrap(), "NAME");
        assert!(positional(&a, 2, "extra").is_err());
    }

    #[test]
    fn positional_handles_repeated_values() {
        // A positional equal to a flag's value used to be misclassified:
        // the old index lookup matched the first occurrence ("rtl" at
        // index 2, consumed by --platform) and dropped the real one.
        let a = args(&["dir", "--platform", "rtl", "rtl"]);
        assert_eq!(positional(&a, 1, "name").unwrap(), "rtl");
        let b = args(&["envs", "PAGE", "PAGE"]);
        assert_eq!(positional(&b, 1, "name").unwrap(), "PAGE");
        assert_eq!(positional(&b, 2, "test").unwrap(), "PAGE");
    }

    #[test]
    fn positional_counts_after_boolean_flags() {
        let a = args(&["--all-platforms", "dir", "NAME"]);
        assert_eq!(positional(&a, 0, "dir").unwrap(), "dir");
        assert_eq!(positional(&a, 1, "name").unwrap(), "NAME");
    }

    #[test]
    fn flag_value_extracts_its_value() {
        let a = args(&["dir", "--workers", "4", "--json"]);
        assert_eq!(flag_value(&a, "--workers"), Ok(Some("4")));
        assert_eq!(flag_value(&a, "--fuel"), Ok(None));
    }

    #[test]
    fn flag_value_rejects_a_flag_as_value() {
        // `--workers --json` used to silently take "--json" as the
        // worker count (and then fail the parse with a baffling
        // message) — and eat the --json flag in the process.
        let a = args(&["dir", "--workers", "--json"]);
        let err = flag_value(&a, "--workers").unwrap_err();
        assert!(err.message.contains("--workers requires a value"), "{err}");
        assert!(int_flag::<usize>(&a, "--workers").is_err());
    }

    #[test]
    fn trailing_valued_flag_is_a_proper_error() {
        let a = args(&["dir", "NAME", "--platform"]);
        let err = flag_value(&a, "--platform").unwrap_err();
        assert!(err.message.contains("--platform requires a value"), "{err}");
    }

    #[test]
    fn unknown_command_names_the_token_and_shows_usage() {
        let err = dispatch(&args(&["frobnicate"])).unwrap_err();
        assert_eq!(err.token.as_deref(), Some("frobnicate"));
        assert!(err.show_usage);
        assert!(err.message.contains("`frobnicate`"), "{err}");
    }

    #[test]
    fn missing_positional_shows_usage_without_a_token() {
        let err = dispatch(&args(&["run"])).unwrap_err();
        assert!(err.show_usage);
        assert_eq!(err.token, None);
        assert!(err.message.contains("missing directory"), "{err}");
    }

    #[test]
    fn malformed_flag_names_the_offending_value() {
        let a = args(&["--workers", "many"]);
        let err = int_flag::<usize>(&a, "--workers").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("many"));
        assert!(err.show_usage);
        assert!(err.message.contains("bad --workers value `many`"), "{err}");
    }

    #[test]
    fn unknown_platform_is_a_token_error() {
        let err = parse_platform("vax").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("vax"));
        assert!(err.show_usage);
    }

    #[test]
    fn runtime_errors_skip_the_usage_text() {
        let err = CliError::from("campaign exploded".to_owned());
        assert!(!err.show_usage);
        assert_eq!(err.token, None);
    }

    #[test]
    fn daemon_subcommands_require_a_socket() {
        let err = socket_path(&args(&["regress", "envs", "PAGE"])).unwrap_err();
        assert!(err.show_usage);
        assert!(err.message.contains("--socket"), "{err}");
    }

    #[test]
    fn submit_spec_mirrors_the_regress_flag_surface() {
        // A nonexistent dir stays as given (no canonicalization).
        let a = args(&[
            "regress",
            "no-such-envs",
            "PAGE",
            "--platform",
            "rtl",
            "--workers",
            "2",
            "--socket",
            "/tmp/advm.sock",
        ]);
        let spec = submit_spec(&a).unwrap();
        assert_eq!(
            spec,
            JobSpec::Regress {
                dir: "no-such-envs".into(),
                env: "PAGE".into(),
                platforms: vec![PlatformId::RtlSim],
                all_platforms: false,
                workers: Some(2),
                fuel: None,
            }
        );
    }

    #[test]
    fn submit_spec_mirrors_the_fuzz_flag_surface() {
        let a = args(&[
            "fuzz",
            "--programs",
            "8",
            "--seed",
            "11",
            "--mine",
            "--platforms",
            "golden,rtl",
            "--workers",
            "2",
            "--socket",
            "/tmp/advm.sock",
        ]);
        assert_eq!(
            submit_spec(&a).unwrap(),
            JobSpec::Fuzz {
                programs: Some(8),
                seed: Some(11),
                mine: true,
                platforms: vec![PlatformId::GoldenModel, PlatformId::RtlSim],
                all_platforms: false,
                workers: Some(2),
                fuel: None,
            }
        );
    }

    #[test]
    fn submit_spec_rejects_unknown_kinds() {
        let err = submit_spec(&args(&["deploy"])).unwrap_err();
        assert_eq!(err.token.as_deref(), Some("deploy"));
        assert!(err.show_usage);
    }

    #[test]
    fn submit_spec_builds_audit_and_explore_jobs() {
        let audit = submit_spec(&args(&["audit", "--platforms", "rtl,gate", "--seed", "9"]));
        assert_eq!(
            audit.unwrap(),
            JobSpec::Audit {
                platforms: vec![PlatformId::RtlSim, PlatformId::GateSim],
                all_platforms: false,
                scenarios: None,
                seed: Some(9),
                workers: None,
                fuel: None,
            }
        );
        let explore = submit_spec(&args(&["explore", "--rounds", "2", "--all-platforms"]));
        assert_eq!(
            explore.unwrap(),
            JobSpec::Explore {
                rounds: Some(2),
                seed: None,
                batch: None,
                workers: None,
                derivative: None,
                all_platforms: true,
            }
        );
    }
}
