//! `advm-cli` — drive the ADVM methodology from the command line.
//!
//! ```text
//! advm-cli scaffold <dir> [--tests N] [--derivative D] [--platform P]
//! advm-cli validate <dir> <env-name>
//! advm-cli check <dir> <env-name>              # abstraction-layer violations
//! advm-cli run <dir> <env-name> <test-id>
//! advm-cli regress <dir> <env-name> [--platform P | --all-platforms]
//!                  [--workers N] [--fuel N] [--json]
//! advm-cli explore [--rounds N] [--seed S] [--batch N] [--workers N]
//!                  [--derivative D] [--all-platforms] [--json]
//! advm-cli audit [--platforms P1,P2 | --all-platforms] [--workers N]
//!                [--scenarios N] [--seed S] [--fuel N] [--json]
//! advm-cli port <dir> <env-name> --derivative D [--platform P]
//! advm-cli asm <file.asm>                      # assemble + listing
//! ```
//!
//! Environments on disk use exactly the paper's Figure 3 layout; `port`
//! rewrites only the abstraction layer and prints the change-set.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use advm::audit::FaultAudit;
use advm::campaign::{Campaign, ProgressObserver};
use advm::env::{EnvConfig, ModuleTestEnv};
use advm::fsio::{read_tree, write_tree};
use advm::porting::port_env;
use advm::stimulus::Exploration;
use advm_soc::{DerivativeId, PlatformId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("advm-cli: {message}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("scaffold") => scaffold(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("regress") => regress(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("audit") => audit(&args[1..]),
        Some("port") => port(&args[1..]),
        Some("asm") => asm(&args[1..]),
        Some("help") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> &'static str {
    "\
usage:
  advm-cli scaffold <dir> [--tests N] [--derivative D] [--platform P]
  advm-cli validate <dir> <env-name>
  advm-cli check <dir> <env-name>
  advm-cli run <dir> <env-name> <test-id>
  advm-cli regress <dir> <env-name> [--platform P | --all-platforms]
                   [--workers N] [--fuel N] [--json]
  advm-cli explore [--rounds N] [--seed S] [--batch N] [--workers N]
                   [--derivative D] [--all-platforms] [--json]
  advm-cli audit [--platforms P1,P2 | --all-platforms] [--workers N]
                 [--scenarios N] [--seed S] [--fuel N] [--json]
  advm-cli port <dir> <env-name> --derivative D [--platform P]
  advm-cli asm <file.asm>

explore runs closed-loop coverage-directed stimulus: round 1 draws
constrained-random Globals.inc scenarios, every later round biases its
draws toward the coverage holes the previous campaigns measured, and
each round prints its page/register coverage delta.

audit mutation-tests the testbench itself: every catalog fault is
injected into each audited platform (default: rtl), the seed suite runs
against the golden model, and each (fault, platform) cell is classified
detected / masked / broken. Escapes feed one coverage-directed scenario
round (--scenarios controls the batch) aimed at killing the survivors;
the final matrix, per-test kill counts and kill rate are printed.

derivatives: SC88-A SC88-B SC88-C SC88-D
platforms:   golden rtl gate accel bondout silicon
"
}

fn parse_derivative(text: &str) -> Result<DerivativeId, String> {
    DerivativeId::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(text))
        .ok_or_else(|| format!("unknown derivative `{text}`"))
}

fn parse_platform(text: &str) -> Result<PlatformId, String> {
    PlatformId::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(text))
        .ok_or_else(|| format!("unknown platform `{text}`"))
}

/// Pulls `--flag value` pairs out of an argument list.
///
/// A value may not itself look like a flag: `--workers --json` is a
/// missing `--workers` value, not a request for `"--json"` workers —
/// silently swallowing the next flag used to turn one typo into two
/// bugs. A trailing valued flag with nothing after it errors the same
/// way.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1).map(String::as_str) {
        Some(value) if !value.starts_with("--") => Ok(Some(value)),
        Some(_) | None => Err(format!("flag {flag} requires a value")),
    }
}

fn positional(args: &[String], index: usize, what: &str) -> Result<String, String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| !a.starts_with("--"))
        .filter(|(i, _)| {
            // Skip values consumed by a preceding value-taking flag. The
            // real index matters: matching by value would misclassify a
            // repeated argument (e.g. `run envs PAGE PAGE`) because every
            // occurrence would resolve to the first one's position.
            *i == 0
                || !args[*i - 1].starts_with("--")
                || FLAGS_WITHOUT_VALUE.contains(&args[*i - 1].as_str())
        })
        .map(|(_, a)| a)
        .nth(index)
        .cloned()
        .ok_or_else(|| format!("missing {what}\n{}", usage()))
}

/// Flags that take no value; a positional may directly follow them.
const FLAGS_WITHOUT_VALUE: [&str; 2] = ["--all-platforms", "--json"];

fn load_env(dir: &str, name: &str) -> Result<ModuleTestEnv, String> {
    let tree = read_tree(Path::new(dir)).map_err(|e| format!("reading `{dir}`: {e}"))?;
    ModuleTestEnv::from_tree(name, &tree)
        .map_err(|e| format!("environment `{name}` in `{dir}`: {e}"))
}

fn scaffold(args: &[String]) -> Result<(), String> {
    let dir = positional(args, 0, "target directory")?;
    let tests: usize = int_flag(args, "--tests")?.unwrap_or(3);
    let derivative = flag_value(args, "--derivative")?
        .map(parse_derivative)
        .transpose()?
        .unwrap_or(DerivativeId::Sc88A);
    let platform = flag_value(args, "--platform")?
        .map(parse_platform)
        .transpose()?
        .unwrap_or(PlatformId::GoldenModel);

    let env = advm::presets::page_env(EnvConfig::new(derivative, platform), tests);
    write_tree(Path::new(&dir), &env.tree()).map_err(|e| format!("writing `{dir}`: {e}"))?;
    println!(
        "scaffolded {} ({} tests, {} on {}) under {dir}",
        env.name(),
        tests,
        derivative.name(),
        platform
    );
    Ok(())
}

fn validate(args: &[String]) -> Result<(), String> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let tree = read_tree(Path::new(&dir)).map_err(|e| format!("reading `{dir}`: {e}"))?;
    let scoped: BTreeMap<String, String> = tree
        .into_iter()
        .filter(|(p, _)| p.starts_with(&format!("{name}/")))
        .collect();
    let issues = advm::validate_layout(&name, &scoped);
    if issues.is_empty() {
        println!("{name}: layout OK ({} files)", scoped.len());
        Ok(())
    } else {
        for issue in &issues {
            println!("{name}: {issue}");
        }
        Err(format!("{} layout issue(s)", issues.len()))
    }
}

fn check(args: &[String]) -> Result<(), String> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let env = load_env(&dir, &name)?;
    let violations = advm::check_env(&env);
    if violations.is_empty() {
        println!("{name}: no abstraction-layer violations");
        Ok(())
    } else {
        for v in &violations {
            println!("{v}");
        }
        Err(format!("{} violation(s)", violations.len()))
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let test_id = positional(args, 2, "test id")?;
    let env = load_env(&dir, &name)?;
    let result = advm::run_cell(&env, &test_id).map_err(|e| e.to_string())?;
    println!("{result}");
    if result.passed() {
        Ok(())
    } else {
        Err("test failed".to_owned())
    }
}

fn regress(args: &[String]) -> Result<(), String> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let env = load_env(&dir, &name)?;
    let json = args.iter().any(|a| a == "--json");

    // Bisection pinpoints the first divergent retired instruction of
    // every divergence the regression surfaces.
    let mut campaign = Campaign::new().env(env.clone()).bisect(true);
    campaign = if args.iter().any(|a| a == "--all-platforms") {
        campaign.platforms(PlatformId::ALL)
    } else {
        let platform = flag_value(args, "--platform")?
            .map(parse_platform)
            .transpose()?
            .unwrap_or(env.config().platform);
        campaign.platform(platform)
    };
    if let Some(workers) = int_flag(args, "--workers")? {
        campaign = campaign.workers(workers);
    }
    if let Some(fuel) = int_flag(args, "--fuel")? {
        campaign = campaign.fuel(fuel);
    }
    if !json {
        // Live progress streams to stderr; verdicts stay on stdout.
        campaign = campaign.observe(ProgressObserver::new());
    }

    let report = campaign.run().map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.matrix());
        println!(
            "{}/{} passed ({} cache hits, {} builds)",
            report.passed(),
            report.total(),
            report.cache_hits(),
            report.unique_builds()
        );
        println!("{}", perf_line(report.perf()));
        for (test, divergence) in report.divergences() {
            println!("divergence in {test}:\n{divergence}");
        }
    }
    if report.failed() == 0 {
        Ok(())
    } else {
        Err(format!("{} failure(s)", report.failed()))
    }
}

/// Renders one human-readable execution-perf line.
fn perf_line(perf: &advm::campaign::CampaignPerf) -> String {
    format!(
        "perf: {} insns in {:.1}ms ({:.2}M steps/s, decode hit rate {:.1}%)",
        perf.instructions,
        perf.wall.as_secs_f64() * 1e3,
        perf.steps_per_sec() / 1e6,
        100.0 * perf.decode_hit_rate(),
    )
}

/// Parses an integer-valued flag, reporting the flag name on failure.
fn int_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    flag_value(args, flag)?
        .map(|v| v.parse().map_err(|_| format!("bad {flag} value `{v}`")))
        .transpose()
}

fn explore(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    let mut exploration = Exploration::new();
    if let Some(rounds) = int_flag(args, "--rounds")? {
        exploration = exploration.rounds(rounds);
    }
    if let Some(seed) = int_flag(args, "--seed")? {
        exploration = exploration.master_seed(seed);
    }
    if let Some(batch) = int_flag(args, "--batch")? {
        exploration = exploration.batch(batch);
    }
    if let Some(workers) = int_flag(args, "--workers")? {
        exploration = exploration.workers(workers);
    }
    if let Some(derivative) = flag_value(args, "--derivative")? {
        exploration = exploration.derivative(parse_derivative(derivative)?);
    }
    if args.iter().any(|a| a == "--all-platforms") {
        exploration = exploration.platforms(PlatformId::ALL);
    }

    let report = exploration.run().map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
        let last = report.rounds().last().expect("at least one round");
        println!(
            "final: {}/{} pages ({:.1}%), {:.1}% registers after {} rounds",
            last.pages_hit,
            report.page_space(),
            100.0 * last.page_coverage,
            100.0 * last.register_coverage,
            report.rounds().len(),
        );
    }
    if report.failed() == 0 {
        Ok(())
    } else {
        Err(format!("{} failing run(s)", report.failed()))
    }
}

fn audit(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    let mut audit = FaultAudit::new();
    if args.iter().any(|a| a == "--all-platforms") {
        audit = audit.platforms(PlatformId::ALL);
    } else if let Some(list) = flag_value(args, "--platforms")? {
        let platforms: Vec<PlatformId> = list
            .split(',')
            .map(parse_platform)
            .collect::<Result<_, _>>()?;
        audit = audit.platforms(platforms);
    }
    if let Some(workers) = int_flag(args, "--workers")? {
        audit = audit.workers(workers);
    }
    if let Some(scenarios) = int_flag(args, "--scenarios")? {
        audit = audit.scenarios(scenarios);
    }
    if let Some(seed) = int_flag(args, "--seed")? {
        audit = audit.seed(seed);
    }
    if let Some(fuel) = int_flag(args, "--fuel")? {
        audit = audit.fuel(fuel);
    }

    let report = audit.run().map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.matrix());
        let killed = report
            .faults()
            .iter()
            .filter(|&&f| report.killed(f))
            .count();
        println!(
            "kill rate: {killed}/{} faults ({:.1}%) across {} platform(s), {} suite tests, {} generated scenarios",
            report.faults().len(),
            100.0 * report.kill_rate(),
            report.platforms().len(),
            report.suite_tests(),
            report.scenarios_generated(),
        );
        println!("{}", perf_line(report.perf()));
        for cell in report.escapes() {
            println!("ESCAPE: {} on {}", cell.fault, cell.platform);
        }
        println!("strongest killers:");
        for (test, kills) in report.kill_counts().iter().take(5) {
            println!("  {kills:>3}  {test}");
        }
    }
    if report.broken() == 0 {
        Ok(())
    } else {
        Err(format!("{} broken audit cell(s)", report.broken()))
    }
}

fn port(args: &[String]) -> Result<(), String> {
    let dir = positional(args, 0, "directory")?;
    let name = positional(args, 1, "environment name")?;
    let env = load_env(&dir, &name)?;
    let derivative = flag_value(args, "--derivative")?
        .map(parse_derivative)
        .transpose()?
        .unwrap_or(env.config().derivative);
    let platform = flag_value(args, "--platform")?
        .map(parse_platform)
        .transpose()?
        .unwrap_or(env.config().platform);

    let outcome = port_env(&env, EnvConfig::new(derivative, platform));
    write_tree(Path::new(&dir), &outcome.env.tree())
        .map_err(|e| format!("writing `{dir}`: {e}"))?;
    println!(
        "ported {name} to {} on {platform}:\n{}",
        derivative.name(),
        outcome.changes
    );
    println!(
        "test files touched: {}",
        advm::porting::test_files_touched(&outcome.changes)
    );
    Ok(())
}

fn asm(args: &[String]) -> Result<(), String> {
    let file = positional(args, 0, "assembler source file")?;
    let path = PathBuf::from(&file);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading `{file}`: {e}"))?;
    let program = advm_asm::assemble_str(&text).map_err(|e| e.to_string())?;
    print!("{}", program.render_listing());
    println!("; {} bytes emitted", program.size_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn positional_skips_flag_values() {
        let a = args(&["dir", "--platform", "rtl", "NAME"]);
        assert_eq!(positional(&a, 0, "dir").unwrap(), "dir");
        assert_eq!(positional(&a, 1, "name").unwrap(), "NAME");
        assert!(positional(&a, 2, "extra").is_err());
    }

    #[test]
    fn positional_handles_repeated_values() {
        // A positional equal to a flag's value used to be misclassified:
        // the old index lookup matched the first occurrence ("rtl" at
        // index 2, consumed by --platform) and dropped the real one.
        let a = args(&["dir", "--platform", "rtl", "rtl"]);
        assert_eq!(positional(&a, 1, "name").unwrap(), "rtl");
        let b = args(&["envs", "PAGE", "PAGE"]);
        assert_eq!(positional(&b, 1, "name").unwrap(), "PAGE");
        assert_eq!(positional(&b, 2, "test").unwrap(), "PAGE");
    }

    #[test]
    fn positional_counts_after_boolean_flags() {
        let a = args(&["--all-platforms", "dir", "NAME"]);
        assert_eq!(positional(&a, 0, "dir").unwrap(), "dir");
        assert_eq!(positional(&a, 1, "name").unwrap(), "NAME");
    }

    #[test]
    fn flag_value_extracts_its_value() {
        let a = args(&["dir", "--workers", "4", "--json"]);
        assert_eq!(flag_value(&a, "--workers"), Ok(Some("4")));
        assert_eq!(flag_value(&a, "--fuel"), Ok(None));
    }

    #[test]
    fn flag_value_rejects_a_flag_as_value() {
        // `--workers --json` used to silently take "--json" as the
        // worker count (and then fail the parse with a baffling
        // message) — and eat the --json flag in the process.
        let a = args(&["dir", "--workers", "--json"]);
        let err = flag_value(&a, "--workers").unwrap_err();
        assert!(err.contains("--workers requires a value"), "{err}");
        assert!(int_flag::<usize>(&a, "--workers").is_err());
    }

    #[test]
    fn trailing_valued_flag_is_a_proper_error() {
        let a = args(&["dir", "NAME", "--platform"]);
        let err = flag_value(&a, "--platform").unwrap_err();
        assert!(err.contains("--platform requires a value"), "{err}");
    }
}
